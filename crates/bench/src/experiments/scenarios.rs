//! The scenario-engine experiment: provisioning under a mutable
//! network topology.
//!
//! Sweeps the scenario intensity (a multiplier on the base spec's
//! event rates) against the allocation mode. Where `fig_faults`
//! destroys capacity, this figure mutates the *fabric around* it:
//! center↔center partitions make cross-partition offers unreachable,
//! link degradations stretch effective distances, zone migrations and
//! region failovers move live server groups between centers (charging
//! a player-visible migration cost), and flash crowds multiply
//! regional demand. Dynamic allocation re-provisions around every
//! mutation; static allocation re-buys its peak block and eats the
//! migration cost without adapting.

use crate::cli::RunOpts;
use mmog_datacenter::resource::ResourceType;
use mmog_faults::ScenarioSpec;
use mmog_sim::engine::{AllocationMode, SimReport, Simulation};
use mmog_sim::report::render_table;
use mmog_sim::scenario;
use std::fmt::Write as _;

/// The sweep's scenario-intensity multipliers: the undisturbed
/// baseline, the base spec, and a 4× storm.
pub const SCENARIO_MULTIPLIERS: [f64; 3] = [0.0, 1.0, 4.0];

fn mode_label(mode: AllocationMode) -> &'static str {
    match mode {
        AllocationMode::Dynamic => "dynamic",
        AllocationMode::Static => "static",
    }
}

fn scenario_row(label: &str, report: &SimReport) -> Vec<String> {
    let recovered = report.recovery_ticks.len();
    let mean_recovery = if recovered == 0 {
        "-".to_string()
    } else {
        let sum: u64 = report.recovery_ticks.iter().sum();
        format!("{:.1}", sum as f64 / recovered as f64)
    };
    vec![
        label.to_string(),
        report.scenario_events.to_string(),
        report.migrations.to_string(),
        format!("{:.0}", report.migration_player_ticks),
        format!("{:.0}", report.unserved_player_ticks),
        report.reprovisions.to_string(),
        recovered.to_string(),
        mean_recovery,
        report.unrecovered_outages.to_string(),
        report.rejections.total().to_string(),
        format!("{:.2}", report.metrics.avg_over(ResourceType::Cpu)),
        format!("{:.2}", report.metrics.avg_under(ResourceType::Cpu)),
    ]
}

const SCENARIO_HEADERS: [&str; 12] = [
    "Setup",
    "Events",
    "Migrations",
    "Migration p-t",
    "Unserved p-t",
    "Reprov",
    "Healed",
    "Mean heal [ticks]",
    "Unhealed",
    "Rejections",
    "Over CPU [%]",
    "Under CPU [%]",
];

/// The scenario figure: topology-mutation intensity × allocation mode.
/// The base spec comes from `--scenario` (default: the paper-default
/// rates), scaled by [`SCENARIO_MULTIPLIERS`].
#[must_use]
pub fn fig_scenarios(opts: &RunOpts) -> String {
    let sopts = opts.scenario();
    let base = opts
        .scenario_spec
        .clone()
        .unwrap_or_else(ScenarioSpec::paper_default);
    let cells: Vec<(AllocationMode, f64)> = [AllocationMode::Dynamic, AllocationMode::Static]
        .iter()
        .flat_map(|&mode| SCENARIO_MULTIPLIERS.iter().map(move |&m| (mode, m)))
        .collect();
    let reports = mmog_par::par_map(&cells, |&(mode, mult)| {
        Simulation::new(scenario::scenario_injection(
            &base.scaled(mult),
            mode,
            &sopts,
        ))
        .run()
    });
    let mut out = String::from(
        "Scenario engine: partitions, link degradations, zone migrations, flash crowds\n\n",
    );
    let _ = writeln!(out, "base spec: {}\n", base.label());
    let rows: Vec<Vec<String>> = cells
        .iter()
        .zip(&reports)
        .map(|(&(mode, mult), report)| {
            scenario_row(&format!("{} x{mult:.1}", mode_label(mode)), report)
        })
        .collect();
    out.push_str(&render_table(&SCENARIO_HEADERS, &rows));
    out.push_str(
        "\nExpected shape: migrations charge both modes the same player-tick \
         cost, and most episodes re-provision within a few ticks. Partitions \
         invert the fault-plane story, though: they never revoke a lease, so \
         static allocation's pre-bought peak block rides them out untouched, \
         while dynamic allocation — which re-buys capacity every tick — must \
         match through the partitioned topology and can starve until the heal. \
         Static pays for that robustness all day, with over-allocation an \
         order of magnitude above dynamic's at every intensity.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> RunOpts {
        RunOpts {
            days: 1,
            cap: Some(2),
            seed: 11,
            ..RunOpts::default()
        }
    }

    #[test]
    fn fig_scenarios_renders_all_cells() {
        let out = fig_scenarios(&quick_opts());
        assert!(out.contains("dynamic x0.0"));
        assert!(out.contains("dynamic x4.0"));
        assert!(out.contains("static x1.0"));
        assert!(out.contains("base spec:"));
        // Deterministic: the same opts render the same bytes.
        assert_eq!(out, fig_scenarios(&quick_opts()));
    }

    #[test]
    fn custom_spec_overrides_base() {
        let mut opts = quick_opts();
        opts.scenario_spec = Some(ScenarioSpec::parse("partition=0.1,seed=3").expect("valid spec"));
        let out = fig_scenarios(&opts);
        assert!(out.contains("seed=3"), "label reflects the custom spec");
    }
}
