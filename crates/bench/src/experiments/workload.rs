//! Workload-side experiments: Figures 1–4 and Table I.

use crate::cli::RunOpts;
use mmog_sim::report::{render_table, sparse_series};
use mmog_util::stats;
use mmog_util::time::TICKS_PER_DAY;
use mmog_workload::analysis;
use mmog_workload::growth;
use mmog_workload::packets;
use mmog_workload::runescape::{generate, RuneScapeConfig};
use mmog_world::config::TraceSet;
use mmog_world::emulator::GameEmulator;
use std::fmt::Write as _;

/// Figure 1 — the number of MMORPG players over time, 1997–2008.
#[must_use]
pub fn fig01_growth(_opts: &RunOpts) -> String {
    let roster = growth::title_roster();
    let mut out = String::from("Figure 1: MMORPG players over time (millions)\n\n");
    let rows: Vec<Vec<String>> = (1997..=2008)
        .map(|year| {
            let total = growth::total_subscribers(&roster, f64::from(year));
            let big = growth::titles_over(&roster, f64::from(year), 0.5).len();
            vec![year.to_string(), format!("{total:.2}"), big.to_string()]
        })
        .collect();
    out.push_str(&render_table(
        &["Year", "Total players [M]", "Titles >500k"],
        &rows,
    ));
    let big2008 = growth::titles_over(&roster, 2008.0, 0.5);
    let _ = writeln!(
        out,
        "\nTitles above 500k players in 2008 ({}): {:?}",
        big2008.len(),
        big2008
    );
    let _ = writeln!(
        out,
        "Paper claim: six games with more than 500k players each. Reproduced: {}.",
        big2008.len()
    );
    out
}

/// Figure 2 — globally active concurrent players around the December
/// 2007 unpopular decision and the two content releases.
#[must_use]
pub fn fig02_global_population(opts: &RunOpts) -> String {
    // 60 days with the decision on day 9 (the paper window is 1 Dec
    // 2007 – 31 Jan 2008 with the decision on 10 Dec).
    let days = opts.days.max(60);
    let mut cfg = RuneScapeConfig::with_figure2_events(days, opts.seed, 9);
    if let Some(cap) = opts.cap {
        for r in &mut cfg.regions {
            r.groups = r.groups.min(cap);
        }
    }
    let trace = generate(&cfg);
    let global = trace.global_series();
    // Two-hour averages, as in the paper's plot.
    let two_hourly = global.downsample_mean(60);
    let mut out = String::from("Figure 2: global active concurrent players (2-hour averages)\n\n");
    let rows: Vec<Vec<String>> = sparse_series(two_hourly.values(), 60)
        .into_iter()
        .map(|(i, v)| vec![format!("day {:.1}", i as f64 / 12.0), format!("{v:.0}")])
        .collect();
    out.push_str(&render_table(&["Time", "Players"], &rows));

    // Shape checks against the paper's narrative.
    let daily = global.downsample_mean(TICKS_PER_DAY as usize);
    let baseline = daily.values()[..8].iter().sum::<f64>() / 8.0;
    let trough = daily.values()[9..12]
        .iter()
        .fold(f64::INFINITY, |a, &b| a.min(b));
    let surge = daily.values()[18..24].iter().fold(0.0f64, |a, &b| a.max(b));
    let peak = global.max().unwrap_or(0.0);
    let _ = writeln!(out, "\nPre-event baseline (daily mean):  {baseline:.0}");
    let _ = writeln!(
        out,
        "Post-decision trough:              {trough:.0} ({:+.1}% — paper: about -25%)",
        100.0 * (trough - baseline) / baseline
    );
    let _ = writeln!(
        out,
        "Content-release surge peak:        {surge:.0} ({:+.1}% — paper: over +50% vs post-drop level)",
        100.0 * (surge - baseline) / baseline
    );
    let _ = writeln!(
        out,
        "Maximum global concurrent players: {peak:.0} (paper: around 250,000)"
    );
    out
}

/// Figure 3 — regional load patterns for region 0 (Europe): envelope,
/// IQR, autocorrelation.
#[must_use]
pub fn fig03_regional_patterns(opts: &RunOpts) -> String {
    let trace = mmog_sim::scenario::standard_trace(&opts.scenario());
    let region = &trace.regions[0];
    let envelope = analysis::load_envelope(region);
    let iqr = analysis::iqr_series(region);
    let mut out = format!(
        "Figure 3: workload of region 0 ({}), {} server groups, {} samples\n\n",
        region.name,
        region.group_count(),
        region.ticks()
    );

    out.push_str("(top) median load with max-min range, every 4 hours:\n");
    let rows: Vec<Vec<String>> = sparse_series(envelope.median.values(), (opts.days * 6) as usize)
        .into_iter()
        .map(|(i, v)| {
            vec![
                format!("{:.1}h", i as f64 / 30.0),
                format!("{:.0}", envelope.min.values()[i]),
                format!("{v:.0}"),
                format!("{:.0}", envelope.max.values()[i]),
            ]
        })
        .collect();
    out.push_str(&render_table(&["Time", "Min", "Median", "Max"], &rows));

    let _ = writeln!(
        out,
        "\n(middle) load IQR across groups: mean {:.0}, max {:.0}",
        iqr.mean().unwrap_or(0.0),
        iqr.max().unwrap_or(0.0)
    );

    // Peak-hour spread (Sec. III-C: median ≈ 50% above minimum).
    let peak_tick = 18 * 30; // 19:00 local for Europe (UTC+1)
    if region.ticks() > peak_tick {
        let cross = region.cross_section(peak_tick);
        let nonzero: Vec<f64> = cross.iter().copied().filter(|v| *v > 0.0).collect();
        if let (Some(med), Some(min)) = (
            stats::median(&nonzero),
            nonzero
                .iter()
                .copied()
                .fold(None::<f64>, |a, v| Some(a.map_or(v, |m| m.min(v)))),
        ) {
            let _ = writeln!(
                out,
                "Peak-hour median/min across groups: {:.2} (paper: about 1.5)",
                med / min
            );
        }
    }

    // ACF: dominant period per group.
    let max_lag = TICKS_PER_DAY as usize + 60;
    let acfs = analysis::acf_per_group(region, max_lag);
    let mut day_peaks = 0usize;
    let mut half_day_troughs = 0usize;
    let mut cyclic = 0usize;
    for acf in &acfs {
        if acf.len() > TICKS_PER_DAY as usize {
            cyclic += 1;
            if acf[TICKS_PER_DAY as usize] > 0.4 {
                day_peaks += 1;
            }
            if acf[(TICKS_PER_DAY / 2) as usize] < -0.2 {
                half_day_troughs += 1;
            }
        }
    }
    let _ = writeln!(
        out,
        "\n(bottom) ACF: {}/{} groups with positive peak at lag 720 (24h), {}/{} with negative peak at lag 360 (12h)",
        day_peaks,
        acfs.len(),
        half_day_troughs,
        acfs.len()
    );
    let _ = writeln!(
        out,
        "Non-diurnal (always-full) groups: {} of {} (paper: 2-5% pinned at 95% load)",
        acfs.len() - cyclic.min(day_peaks).max(day_peaks),
        acfs.len()
    );
    let _ = writeln!(
        out,
        "Diurnal fraction at ACF>0.4: {:.0}%",
        100.0 * analysis::diurnal_fraction(region, 0.4)
    );
    out
}

/// Figure 4 — packet length and inter-arrival-time CDFs for the nine
/// session traces.
#[must_use]
pub fn fig04_packet_cdfs(opts: &RunOpts) -> String {
    let traces = packets::generate_all(20_000, opts.seed);
    let mut out = String::from("Figure 4: packet-level session traces\n\n");
    out.push_str("(left) CDF of packet length [%] at selected sizes:\n");
    let len_points = [100.0, 150.0, 200.0, 300.0, 400.0, 500.0];
    let rows: Vec<Vec<String>> = traces
        .iter()
        .map(|t| {
            let ecdf = t.length_ecdf();
            let mut row = vec![format!("{}: {}", t.name, t.label)];
            row.extend(
                len_points
                    .iter()
                    .map(|&x| format!("{:.0}", 100.0 * ecdf.eval(x))),
            );
            row
        })
        .collect();
    let mut headers = vec!["Trace"];
    let labels: Vec<String> = len_points.iter().map(|x| format!("<={x}B")).collect();
    headers.extend(labels.iter().map(String::as_str));
    out.push_str(&render_table(&headers, &rows));

    out.push_str("\n(right) CDF of packet IAT [%] at selected times:\n");
    let iat_points = [25.0, 50.0, 100.0, 200.0, 400.0, 600.0];
    let rows: Vec<Vec<String>> = traces
        .iter()
        .map(|t| {
            let ecdf = t.iat_ecdf();
            let mut row = vec![t.name.clone()];
            row.extend(
                iat_points
                    .iter()
                    .map(|&x| format!("{:.0}", 100.0 * ecdf.eval(x))),
            );
            row
        })
        .collect();
    let mut headers = vec!["Trace"];
    let labels: Vec<String> = iat_points.iter().map(|x| format!("<={x}ms")).collect();
    headers.extend(labels.iter().map(String::as_str));
    out.push_str(&render_table(&headers, &rows));

    out.push_str("\nShape checks (Sec. III-D):\n");
    let med_iat = |name: &str| {
        traces
            .iter()
            .find(|t| t.name == name)
            .unwrap()
            .iat_ecdf()
            .inverse(0.5)
            .unwrap()
    };
    let med_len = |name: &str| {
        traces
            .iter()
            .find(|t| t.name == name)
            .unwrap()
            .length_ecdf()
            .inverse(0.5)
            .unwrap()
    };
    let _ = writeln!(
        out,
        "- fast-paced T1/T6 median IAT: {:.0}/{:.0} ms (low, crowding-independent)",
        med_iat("Trace 1"),
        med_iat("Trace 6")
    );
    let _ = writeln!(
        out,
        "- p2p trading T2 vs T7: similar sizes ({:.0}B vs {:.0}B), IAT {:.0}ms vs {:.0}ms (T7 lower)",
        med_len("Trace 2"),
        med_len("Trace 7"),
        med_iat("Trace 2"),
        med_iat("Trace 7")
    );
    let _ = writeln!(
        out,
        "- group play T4: largest packets ({:.0}B) at the lowest IAT ({:.0}ms)",
        med_len("Trace 4"),
        med_iat("Trace 4")
    );
    out
}

/// Table I — the eight emulated trace data sets.
#[must_use]
pub fn table1_emulator_sets(opts: &RunOpts) -> String {
    let mut out =
        String::from("Table I: emulator configurations and resulting signal character\n\n");
    let mut rows = Vec::new();
    for set in TraceSet::ALL {
        let cfg = set.config();
        let run = GameEmulator::run_cached(cfg, opts.seed, 2 * TICKS_PER_DAY as usize);
        let totals = run.total_series();
        let pairs = run.interaction_series();
        // Instantaneous dynamics: mean |tick-to-tick change| of the
        // interaction signal, relative to its mean.
        let diffs: Vec<f64> = pairs.diff().values().iter().map(|d| d.abs()).collect();
        let inst = stats::mean(&diffs).unwrap_or(0.0) / pairs.mean().unwrap_or(1.0).max(1.0);
        // Overall dynamics: relative swing of the daily signal.
        let overall = (totals.max().unwrap_or(0.0) - totals.min().unwrap_or(0.0))
            / totals.max().unwrap_or(1.0).max(1.0);
        let mix = set.mix_percent();
        rows.push(vec![
            set.name().to_string(),
            format!("{:.0}/{:.0}/{:.0}/{:.0}", mix[0], mix[1], mix[2], mix[3]),
            if set.peak_hours() { "Yes" } else { "No" }.to_string(),
            format!("{:.0}", totals.max().unwrap_or(0.0)),
            format!("{overall:.2}"),
            format!("{inst:.3}"),
            format!("{:?}", set.signal_type()),
        ]);
    }
    out.push_str(&render_table(
        &[
            "Data set",
            "Aggr/Scout/Team/Camp [%]",
            "Peak hours",
            "Peak load",
            "Overall dyn.",
            "Inst. dyn.",
            "Signal type",
        ],
        &rows,
    ));
    out.push_str(
        "\nSec. IV-D.1 classification: Type I = high inst. dynamics (sets 2,3,4); \
         Type II = low (sets 6,7,8); Type III = medium (sets 1,5).\n",
    );
    out
}
