//! Provisioning experiments: Tables V–VII and Figures 7–14, plus the
//! ablations DESIGN.md calls out.
//!
//! Every sweep in this module fans its independent simulation runs out
//! with [`mmog_par::par_map`], which preserves input order; rows and
//! series are then assembled serially, so the rendered tables are
//! byte-identical to the historical serial loops for any `--jobs`
//! value. Workloads come from the process-wide trace cache, so a sweep
//! of N configurations generates its trace once, not N times.

use crate::cli::RunOpts;
use mmog_datacenter::policy::HostingPolicy;
use mmog_datacenter::resource::ResourceType;
use mmog_predict::eval::PredictorKind;
use mmog_sim::engine::{AllocationMode, SimReport, Simulation};
use mmog_sim::report::{render_table, sparse_series};
use mmog_sim::scenario;
use mmog_util::geo::DistanceClass;
use mmog_world::update::UpdateModel;
use std::fmt::Write as _;

fn run(cfg: mmog_sim::engine::SimulationConfig) -> SimReport {
    Simulation::new(cfg).run()
}

fn metric_row(name: &str, report: &SimReport) -> Vec<String> {
    let m = &report.metrics;
    vec![
        name.to_string(),
        format!("{:.2}", m.avg_over(ResourceType::Cpu)),
        format!("{:.2}", m.avg_over(ResourceType::ExtNetIn)),
        format!("{:.2}", m.avg_over(ResourceType::ExtNetOut)),
        format!("{:.2}", m.avg_under(ResourceType::Cpu)),
        format!("{:.2}", m.avg_under(ResourceType::ExtNetOut)),
        m.events().to_string(),
    ]
}

const METRIC_HEADERS: [&str; 7] = [
    "Setup",
    "Over CPU [%]",
    "Over ExtNet[in] [%]",
    "Over ExtNet[out] [%]",
    "Under CPU [%]",
    "Under ExtNet[out] [%]",
    "|Y|>1% events",
];

/// Table V + Figure 7 — the impact of the prediction algorithm on the
/// provisioning performance (HP-1/HP-2 platform, O(n²) game).
#[must_use]
pub fn table5_prediction_impact(opts: &RunOpts) -> String {
    let mut out =
        String::from("Table V: dynamic resource allocation under six prediction algorithms\n\n");
    let sopts = opts.scenario();
    let reports = mmog_par::par_map(&PredictorKind::TABLE5, |&kind| {
        run(scenario::prediction_impact(
            kind,
            AllocationMode::Dynamic,
            &sopts,
        ))
    });
    let mut rows = Vec::new();
    let mut event_series = Vec::new();
    for (kind, report) in PredictorKind::TABLE5.iter().zip(&reports) {
        rows.push(metric_row(kind.label(), report));
        event_series.push((kind.label(), report.metrics.cumulative_events().clone()));
    }
    out.push_str(&render_table(&METRIC_HEADERS, &rows));

    out.push_str("\nFigure 7: cumulative significant under-allocation events over time\n\n");
    let points = 12usize;
    let mut headers: Vec<String> = vec!["Tick".into()];
    headers.extend(event_series.iter().map(|(n, _)| (*n).to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let n = event_series[0].1.len();
    let step = (n / points).max(1);
    let mut fig_rows = Vec::new();
    for i in (0..n).step_by(step) {
        let mut row = vec![i.to_string()];
        for (_, series) in &event_series {
            row.push(format!("{:.0}", series.values()[i]));
        }
        fig_rows.push(row);
    }
    out.push_str(&render_table(&header_refs, &fig_rows));
    out.push_str(
        "\nPaper shape: the Neural predictor accumulates the fewest events \
         (317 over two weeks), roughly half of Last value's; Average is the outlier.\n",
    );
    out
}

/// Figure 8 — static vs. dynamic CPU over-allocation over time
/// (Neural predictor).
#[must_use]
pub fn fig08_static_vs_dynamic(opts: &RunOpts) -> String {
    let sopts = opts.scenario();
    let modes = [AllocationMode::Dynamic, AllocationMode::Static];
    let mut reports = mmog_par::par_map(&modes, |&mode| {
        run(scenario::prediction_impact(
            PredictorKind::Neural,
            mode,
            &sopts,
        ))
    })
    .into_iter();
    let dynamic = reports.next().expect("dynamic report");
    let static_ = reports.next().expect("static report");
    let mut out = String::from("Figure 8: CPU over-allocation, static vs dynamic allocation\n\n");
    let d = dynamic.metrics.over_cpu_series();
    let s = static_.metrics.over_cpu_series();
    let rows: Vec<Vec<String>> = sparse_series(d.values(), 24)
        .into_iter()
        .map(|(i, v)| {
            vec![
                format!("{:.1}h", i as f64 / 30.0),
                format!("{:.0}", s.values().get(i).copied().unwrap_or(0.0)),
                format!("{v:.0}"),
            ]
        })
        .collect();
    out.push_str(&render_table(&["Time", "Static [%]", "Dynamic [%]"], &rows));
    let _ = writeln!(
        out,
        "\nAverages: static {:.1}% vs dynamic {:.1}% (paper: ~250% vs ~25%)",
        static_.metrics.avg_over(ResourceType::Cpu),
        dynamic.metrics.avg_over(ResourceType::Cpu)
    );
    out
}

/// Figures 9–10 and Table VI — the impact of the player-interaction
/// (update) model.
#[must_use]
pub fn fig09_10_table6_interaction(opts: &RunOpts) -> String {
    let sopts = opts.scenario();
    let mut out = String::new();
    let mut table6_rows = Vec::new();
    let mut cumulative = Vec::new();
    let mut fig9: Vec<(UpdateModel, Vec<(usize, f64)>, Vec<(usize, f64)>)> = Vec::new();
    // One dynamic + one static run per update model; the pairs fan out
    // together.
    let reports = mmog_par::par_map(&UpdateModel::ALL, |&model| {
        let dynamic = run(scenario::interaction_impact(
            model,
            AllocationMode::Dynamic,
            &sopts,
        ));
        let static_ = run(scenario::interaction_impact(
            model,
            AllocationMode::Static,
            &sopts,
        ));
        (dynamic, static_)
    });
    for (&model, (dynamic, static_)) in UpdateModel::ALL.iter().zip(&reports) {
        table6_rows.push(vec![
            model.label().to_string(),
            format!("{:.2}", static_.metrics.avg_over(ResourceType::Cpu)),
            format!("{:.2}", dynamic.metrics.avg_over(ResourceType::Cpu)),
            format!("{:.3}", dynamic.metrics.avg_under(ResourceType::Cpu)),
            dynamic.metrics.events().to_string(),
            format!(
                "{:.1}",
                100.0 * dynamic.metrics.events() as f64 / dynamic.metrics.samples().max(1) as f64
            ),
        ]);
        cumulative.push((model, dynamic.metrics.cumulative_events().clone()));
        if matches!(
            model,
            UpdateModel::Linear | UpdateModel::Quadratic | UpdateModel::Cubic
        ) {
            fig9.push((
                model,
                sparse_series(dynamic.metrics.over_cpu_series().values(), 16),
                sparse_series(dynamic.metrics.under_cpu_series().values(), 16),
            ));
        }
    }

    out.push_str("Figure 9: over-/under-allocation over time for three update models\n\n");
    for (model, over, under) in &fig9 {
        let _ = writeln!(out, "{model}:");
        let rows: Vec<Vec<String>> = over
            .iter()
            .zip(under)
            .map(|((i, o), (_, u))| {
                vec![
                    format!("{:.1}h", *i as f64 / 30.0),
                    format!("{o:.0}"),
                    format!("{u:.2}"),
                ]
            })
            .collect();
        out.push_str(&render_table(&["Time", "Over [%]", "Under [%]"], &rows));
        out.push('\n');
    }

    out.push_str("Figure 10: cumulative significant under-allocation events\n\n");
    let mut headers: Vec<String> = vec!["Tick".into()];
    headers.extend(cumulative.iter().map(|(m, _)| m.label().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let n = cumulative[0].1.len();
    let step = (n / 12).max(1);
    let mut rows = Vec::new();
    for i in (0..n).step_by(step) {
        let mut row = vec![i.to_string()];
        for (_, series) in &cumulative {
            row.push(format!("{:.0}", series.values()[i]));
        }
        rows.push(row);
    }
    out.push_str(&render_table(&header_refs, &rows));

    out.push_str("\nTable VI: static vs dynamic allocation per interaction type\n\n");
    out.push_str(&render_table(
        &[
            "Interaction type",
            "Static over [%]",
            "Dynamic over [%]",
            "Dynamic under [%]",
            "|Y|>1% events",
            "Event samples [%]",
        ],
        &table6_rows,
    ));
    out.push_str(
        "\nPaper shape: static over-allocation grows from ~56% (O(n)) to ~242% (O(n^3)); \
         dynamic stays 5-7x lower; events remain below 3% of samples.\n",
    );
    out
}

/// Figure 11 — the impact of the CPU resource bulk (HP-3…HP-7).
#[must_use]
pub fn fig11_resource_bulk(opts: &RunOpts) -> String {
    let sopts = opts.scenario();
    let mut out =
        String::from("Figure 11: impact of the CPU resource bulk (policies HP-3..HP-7)\n\n");
    let policies: Vec<usize> = (3..=7).collect();
    let reports = mmog_par::par_map(&policies, |&n| {
        run(scenario::policy_impact(HostingPolicy::hp(n), &sopts))
    });
    let mut rows = Vec::new();
    for (&n, report) in policies.iter().zip(&reports) {
        let bulk = HostingPolicy::hp(n).granularity();
        rows.push(vec![
            format!("HP-{n}"),
            format!("{bulk:.2}"),
            format!("{:.2}", report.metrics.avg_over(ResourceType::Cpu)),
            format!("{:.3}", report.metrics.avg_under(ResourceType::Cpu)),
            report.metrics.events().to_string(),
        ]);
    }
    out.push_str(&render_table(
        &[
            "Policy",
            "CPU bulk [unit]",
            "Over [%]",
            "Under [%]",
            "|Y|>1% events",
        ],
        &rows,
    ));
    out.push_str(
        "\nPaper shape: over-allocation tends up with bigger bulks; significant \
         under-allocation events increase as the bulks get finer.\n",
    );
    out
}

/// Figure 12 — the impact of the time bulk (HP-5, HP-8…HP-11).
#[must_use]
pub fn fig12_time_bulk(opts: &RunOpts) -> String {
    let sopts = opts.scenario();
    let mut out =
        String::from("Figure 12: impact of the time bulk (policies HP-5, HP-8..HP-11)\n\n");
    let policies = [5usize, 8, 9, 10, 11];
    let reports = mmog_par::par_map(&policies, |&n| {
        run(scenario::policy_impact(HostingPolicy::hp(n), &sopts))
    });
    let mut rows = Vec::new();
    for (&n, report) in policies.iter().zip(&reports) {
        let hours = HostingPolicy::hp(n).time_bulk.hours();
        rows.push(vec![
            format!("HP-{n}"),
            format!("{hours:.0}"),
            format!("{:.2}", report.metrics.avg_over(ResourceType::Cpu)),
            format!("{:.3}", report.metrics.avg_under(ResourceType::Cpu)),
            report.metrics.events().to_string(),
        ]);
    }
    out.push_str(&render_table(
        &[
            "Policy",
            "Time bulk [h]",
            "Over [%]",
            "Under [%]",
            "|Y|>1% events",
        ],
        &rows,
    ));
    out.push_str(
        "\nPaper shape: over-allocation grows with the lease length; the shortest \
         time bulks are the most efficient, and under-allocation stays low for \
         realistic (>1h) bulks.\n",
    );
    out
}

/// Figure 13 — allocation distribution across distance classes for the
/// five latency-tolerance values (North American subset).
#[must_use]
pub fn fig13_latency_tolerance(opts: &RunOpts) -> String {
    let sopts = opts.scenario();
    let mut out = String::from(
        "Figure 13: allocated resources by player-server distance, per latency tolerance\n\
         (North American data centers and requests only)\n\n",
    );
    let results = mmog_par::par_map(&DistanceClass::ALL, |&tolerance| {
        let cfg = scenario::latency_impact(tolerance, &sopts);
        let centers_copy = cfg.centers.clone();
        let report = run(cfg);
        (report, centers_copy)
    });
    let mut rows = Vec::new();
    for (&tolerance, (report, centers_copy)) in DistanceClass::ALL.iter().zip(&results) {
        let shares = report.allocation_by_distance_class(centers_copy);
        let mut row = vec![tolerance.label().to_string()];
        row.extend(shares.iter().map(|(_, s)| format!("{s:.1}")));
        row.push(format!(
            "{:.2}",
            report.metrics.avg_under(ResourceType::Cpu)
        ));
        rows.push(row);
    }
    let headers = [
        "Tolerance",
        "same [%]",
        "<1000km [%]",
        "<2000km [%]",
        "<4000km [%]",
        ">4000km [%]",
        "Under CPU [%]",
    ];
    out.push_str(&render_table(&headers, &rows));
    out.push_str(
        "\nPaper shape: with low tolerance everything is served locally; as the \
         tolerance grows, requests migrate to the finer-grained Central/West \
         centers despite the distance.\n",
    );
    out
}

/// Figure 14 — per-center allocation at Very-far tolerance: East-coast
/// requests vs other requests vs free resources.
#[must_use]
pub fn fig14_allocation_by_center(opts: &RunOpts) -> String {
    let sopts = opts.scenario();
    let cfg = scenario::latency_impact(DistanceClass::VeryFar, &sopts);
    let report = run(cfg);
    let scored_ticks = report.metrics.samples().max(1) as f64;
    let mut out = String::from(
        "Figure 14: per-center average CPU allocation [units] at Very far tolerance\n\n",
    );
    let east_ops: Vec<u32> = report
        .operator_origins
        .iter()
        .filter(|(_, (name, _))| name == "US East" || name == "Canada East")
        .map(|(op, _)| *op)
        .collect();
    let mut rows = Vec::new();
    for usage in &report.center_usage {
        let east: f64 = usage
            .cpu_by_operator
            .iter()
            .filter(|(op, _)| east_ops.contains(op))
            .map(|(_, v)| v)
            .sum();
        let other = usage.cpu_total - east;
        rows.push(vec![
            usage.name.clone(),
            format!("{:.1}", east / scored_ticks),
            format!("{:.1}", other / scored_ticks),
            format!("{:.1}", usage.cpu_free / scored_ticks),
            format!("{:.1}", usage.capacity_cpu),
        ]);
    }
    out.push_str(&render_table(
        &[
            "Data center",
            "East-coast req.",
            "Other req.",
            "Free",
            "Capacity",
        ],
        &rows,
    ));
    out.push_str(
        "\nPaper shape: the coarse-policy US East centers are the only ones left \
         with free resources; East-coast requests are served by Central/West \
         centers under their better policies.\n",
    );
    out
}

/// Table VII — servicing multiple MMOGs with different update models.
#[must_use]
pub fn table7_multi_mmog(opts: &RunOpts) -> String {
    let sopts = opts.scenario();
    let mixes: [[f64; 3]; 7] = [
        [0.0, 0.0, 100.0],
        [5.0, 5.0, 90.0],
        [10.0, 10.0, 80.0],
        [25.0, 25.0, 50.0],
        [33.0, 33.0, 33.0],
        [0.0, 100.0, 0.0],
        [100.0, 0.0, 0.0],
    ];
    let mut out =
        String::from("Table VII: concurrent MMOGs (A: O(n.log n), B: O(n^2), C: O(n^2.log n))\n\n");
    let reports = mmog_par::par_map(&mixes, |&mix| run(scenario::multi_mmog(mix, &sopts)));
    let mut rows = Vec::new();
    for (mix, report) in mixes.iter().zip(&reports) {
        let per_game = |name: &str| {
            report.per_game.iter().find(|g| g.name == name).map_or_else(
                || "-".into(),
                |g| format!("{:.1}", g.metrics.avg_over(ResourceType::Cpu)),
            )
        };
        rows.push(vec![
            format!("{:.0}/{:.0}/{:.0}", mix[0], mix[1], mix[2]),
            format!("{:.2}", report.metrics.avg_over(ResourceType::Cpu)),
            format!("{:.3}", report.metrics.avg_under(ResourceType::Cpu)),
            report.metrics.events().to_string(),
            per_game("MMOG A"),
            per_game("MMOG B"),
            per_game("MMOG C"),
        ]);
    }
    out.push_str(&render_table(
        &[
            "A/B/C [%]",
            "Over CPU [%]",
            "Under CPU [%]",
            "|Y|>1% events",
            "Over A",
            "Over B",
            "Over C",
        ],
        &rows,
    ));
    out.push_str(
        "\nPaper shape: efficiency is set by the biggest consumer — mixes dominated \
         by B/C games perform alike; a pure-A workload is markedly cheaper.\n",
    );
    out
}

/// Extension — the paper's stated future work: "the impact of
/// prioritizing the resource requests according to the interaction
/// type of the MMOG" (Sec. V-F / VII). Runs the even three-game mix on
/// a capacity-constrained platform under three priority regimes and
/// reports each game's under-allocation.
#[must_use]
pub fn ablation_priority(opts: &RunOpts) -> String {
    let sopts = opts.scenario();
    let mut out = String::from(
        "Extension (paper future work): request priority by interaction type\n\
         (even A/B/C mix on a platform scaled to 45% capacity)\n\n",
    );
    let regimes: [(&str, [i32; 3]); 3] = [
        ("none (insertion order)", [0, 0, 0]),
        ("heavy first (C > B > A)", [2, 1, 0]),
        ("light first (A > B > C)", [0, 1, 2]),
    ];
    let reports = mmog_par::par_map(&regimes, |&(_, priorities)| {
        run(scenario::multi_mmog_prioritized(
            [33.0, 33.0, 33.0],
            priorities,
            0.45,
            &sopts,
        ))
    });
    let mut rows = Vec::new();
    for (&(label, _), report) in regimes.iter().zip(&reports) {
        let under = |name: &str| {
            report.per_game.iter().find(|g| g.name == name).map_or_else(
                || "-".into(),
                |g| format!("{:.3}", g.metrics.avg_under(ResourceType::Cpu)),
            )
        };
        rows.push(vec![
            label.to_string(),
            under("MMOG A"),
            under("MMOG B"),
            under("MMOG C"),
            report.metrics.events().to_string(),
            report.unmet_steps.to_string(),
        ]);
    }
    out.push_str(&render_table(
        &[
            "Priority regime",
            "Under A [%]",
            "Under B [%]",
            "Under C [%]",
            "Events",
            "Unmet steps",
        ],
        &rows,
    ));
    out.push_str(
        "\nWith equal priorities the insertion order (A, B, C) already acts as\n\
         light-first. Priorities re-decide who gets the marginal capacity at\n\
         the contention edge; under deep, sustained saturation every game is\n\
         starved in proportion to its demand regardless of order.\n",
    );
    out
}

/// Ablation — demand headroom: "a mechanism that allocates more than
/// the predicted volume of required resources" (Sec. V-C).
#[must_use]
pub fn ablation_headroom(opts: &RunOpts) -> String {
    let sopts = opts.scenario();
    let mut out = String::from(
        "Ablation: demand headroom factor on the Table V setup (Neural predictor)\n\n",
    );
    let headrooms = [1.0, 1.05, 1.1, 1.25, 1.5];
    let reports = mmog_par::par_map(&headrooms, |&headroom| {
        let mut cfg =
            scenario::prediction_impact(PredictorKind::Neural, AllocationMode::Dynamic, &sopts);
        for g in &mut cfg.games {
            g.headroom = headroom;
        }
        run(cfg)
    });
    let mut rows = Vec::new();
    for (&headroom, report) in headrooms.iter().zip(&reports) {
        rows.push(vec![
            format!("{headroom:.2}"),
            format!("{:.2}", report.metrics.avg_over(ResourceType::Cpu)),
            format!("{:.3}", report.metrics.avg_under(ResourceType::Cpu)),
            report.metrics.events().to_string(),
        ]);
    }
    out.push_str(&render_table(
        &["Headroom", "Over CPU [%]", "Under CPU [%]", "|Y|>1% events"],
        &rows,
    ));
    out.push_str("\nHeadroom trades over-allocation for fewer disruption events.\n");
    out
}

/// Ablation — area-of-interest filtering: the Sec. II-A reduction
/// O(n²)→O(n·log n), O(n³)→O(n²·log n) applied to the demand model.
#[must_use]
pub fn ablation_aoi(opts: &RunOpts) -> String {
    let sopts = opts.scenario();
    let mut out = String::from("Ablation: area-of-interest update reduction (Sec. II-A)\n\n");
    // Flatten the model x variant grid so all four runs fan out at once.
    let combos: Vec<(UpdateModel, &str, UpdateModel)> =
        [UpdateModel::Quadratic, UpdateModel::Cubic]
            .into_iter()
            .flat_map(|model| {
                [("full", model), ("AoI-reduced", model.aoi_reduced())]
                    .map(|(variant, m)| (model, variant, m))
            })
            .collect();
    let reports = mmog_par::par_map(&combos, |&(_, _, m)| {
        run(scenario::interaction_impact(
            m,
            AllocationMode::Static,
            &sopts,
        ))
    });
    let mut rows = Vec::new();
    for (&(model, variant, m), report) in combos.iter().zip(&reports) {
        rows.push(vec![
            format!("{model} ({variant} -> {m})"),
            format!("{:.2}", report.metrics.avg_over(ResourceType::Cpu)),
        ]);
    }
    out.push_str(&render_table(
        &["Update model", "Static over CPU [%]"],
        &rows,
    ));
    out.push_str(
        "\nAoI filtering flattens the demand curve, shrinking the peak-sizing \
         penalty of static provisioning.\n",
    );
    out
}
