//! The deterministic scenario engine: topology mutations, zone
//! migration and demand surges compiled into a timed event list.
//!
//! Where the fault plane ([`crate::FaultSchedule`]) perturbs center
//! *availability*, a scenario perturbs everything around it: the
//! network between centers (partitions, link degradation), the homes
//! of server groups (zone migration, region failover) and the demand
//! itself (flash crowds). A [`ScenarioSpec`] — parsed from the
//! `--scenario` CLI flag / `MMOG_SCENARIO` environment variable in the
//! same `key=value` grammar as [`crate::FaultSpec`] — compiles into a
//! [`ScenarioTimeline`]: a pre-materialised, canonically sorted list of
//! [`ScenarioEvent`]s the simulation engine applies from its serial
//! sections only.
//!
//! Determinism contract: a timeline is a pure function of
//! `(spec, ticks, centers)`. Generation draws from dedicated
//! [`mmog_util::rng::stream_seed`] streams whose indices are disjoint
//! from the fault plane's, so scenarios compose with fault schedules
//! without perturbing either's event history, and the same spec
//! produces the same timeline regardless of thread count.
//!
//! Events that target a *group* or a *region* (migration, flash
//! crowds) cannot know the group count at compile time — the platform
//! is the engine's business. They therefore carry an opaque `pick`
//! drawn from the stream; the engine resolves it against its own group
//! and region tables (`pick % n`), mirroring how
//! [`crate::FaultKind::LeaseRevoked`] picks a center at compile time
//! but a lease at apply time.

use mmog_util::rng::Rng64;
use mmog_util::time::{TICKS_PER_DAY, TICK_MINUTES};
use serde::{Deserialize, Serialize};

/// What a single scenario event does when the engine applies it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScenarioEventKind {
    /// All partitions heal: every center rejoins one component.
    Heal,
    /// The link `a`↔`b` returns to its nominal distance factor.
    LinkRestore {
        /// One endpoint (center index).
        a: u32,
        /// The other endpoint (center index).
        b: u32,
    },
    /// The federation splits along `mask`: centers whose index bit is
    /// set are cut off from centers whose bit is clear (component
    /// refinement — composes with earlier partitions).
    Partition {
        /// Bit `i` set ⇒ center `i` goes to the set-side component.
        mask: u64,
    },
    /// The link `a`↔`b` degrades: its effective distance is inflated
    /// by `factor` until the matching restore.
    LinkDegrade {
        /// One endpoint (center index).
        a: u32,
        /// The other endpoint (center index).
        b: u32,
        /// Distance multiplier (≥ 1).
        factor: f64,
    },
    /// A flash crowd subsides: the targeted region's demand multiplier
    /// returns to 1.
    FlashEnd {
        /// Opaque draw; the engine resolves `pick % n_regions`.
        pick: u64,
    },
    /// A flash crowd begins: every group homed in the targeted region
    /// sees its player demand multiplied by `factor`.
    FlashBegin {
        /// Opaque draw; the engine resolves `pick % n_regions`.
        pick: u64,
        /// Demand multiplier while the crowd lasts (≥ 1).
        factor: f64,
    },
    /// One server group migrates between centers: all its leases are
    /// dropped (to be re-acquired wherever the matcher now prefers)
    /// and its players are charged the migration cost.
    Migrate {
        /// Opaque draw; the engine resolves `pick % n_groups`.
        pick: u64,
    },
    /// A whole center is administratively drained: every group holding
    /// leases there migrates away at once.
    RegionFailover {
        /// Index of the drained center.
        center: u32,
    },
}

impl ScenarioEventKind {
    /// Stable lower-case label used in trace events.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Heal => "heal",
            Self::LinkRestore { .. } | Self::LinkDegrade { .. } => "topology_change",
            Self::Partition { .. } => "partition",
            Self::FlashEnd { .. } | Self::FlashBegin { .. } => "flash_crowd",
            Self::Migrate { .. } | Self::RegionFailover { .. } => "migration",
        }
    }

    /// Ordering rank for same-tick events: recoveries (heal, restore,
    /// flash end) before new disruptions, so a back-to-back end/begin
    /// pair resolves to the disruption — the same convention as the
    /// fault plane's repair-before-outage rank.
    fn rank(&self) -> u8 {
        match self {
            Self::Heal => 0,
            Self::LinkRestore { .. } => 1,
            Self::FlashEnd { .. } => 2,
            Self::Partition { .. } => 3,
            Self::LinkDegrade { .. } => 4,
            Self::FlashBegin { .. } => 5,
            Self::Migrate { .. } => 6,
            Self::RegionFailover { .. } => 7,
        }
    }

    /// Payload tiebreaker for the canonical sort (same tick, same rank).
    fn sort_payload(&self) -> (u64, u64) {
        match *self {
            Self::Heal => (0, 0),
            Self::LinkRestore { a, b } | Self::LinkDegrade { a, b, .. } => {
                (u64::from(a), u64::from(b))
            }
            Self::Partition { mask } => (mask, 0),
            Self::FlashEnd { pick } | Self::FlashBegin { pick, .. } => (pick, 0),
            Self::Migrate { pick } => (pick, 0),
            Self::RegionFailover { center } => (u64::from(center), 0),
        }
    }
}

/// One timed scenario event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioEvent {
    /// Tick at which the event strikes (applied before the tick's
    /// demand fill, so its impact is visible the same tick).
    pub tick: u64,
    /// What happens.
    pub kind: ScenarioEventKind,
}

/// Declarative scenario parameters, parseable from the `--scenario`
/// CLI flag / `MMOG_SCENARIO` environment variable.
///
/// Spec strings are comma-separated `key=value` pairs (whitespace
/// around `=` and `,` is ignored):
///
/// ```text
/// seed=7,partition=0.5,pmins=180,migrate=2,mcost=2,flash=1,fpeak=2.5,fmins=240
/// ```
///
/// | key        | meaning                                               |
/// |------------|-------------------------------------------------------|
/// | `seed`     | master seed of the scenario streams                   |
/// | `partition`| expected network partitions per simulated day         |
/// | `pmins`    | mean partition duration, minutes                      |
/// | `migrate`  | expected zone (group) migrations per day              |
/// | `mcost`    | migration cost: unserved ticks charged per player     |
/// | `flash`    | expected flash crowds per day                         |
/// | `fpeak`    | demand multiplier while a flash crowd lasts           |
/// | `fmins`    | mean flash-crowd duration, minutes                    |
/// | `failover` | expected region failovers (center drains) per day     |
/// | `link`     | expected link-degradation episodes per day            |
/// | `lfactor`  | distance multiplier while a link is degraded          |
/// | `lmins`    | mean link-degradation duration, minutes               |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Master seed of the scenario streams (independent of both the
    /// simulation's `master_seed` and the fault spec's seed).
    pub seed: u64,
    /// Expected network partitions per simulated day.
    pub partitions_per_day: f64,
    /// Mean partition duration, minutes (exponential, min one tick).
    pub partition_minutes: u64,
    /// Expected zone (group) migrations per simulated day.
    pub migrations_per_day: f64,
    /// Migration cost: unserved player-ticks charged per player moved.
    pub migration_cost_ticks: u64,
    /// Expected flash crowds per simulated day.
    pub flash_per_day: f64,
    /// Demand multiplier while a flash crowd lasts (≥ 1).
    pub flash_peak: f64,
    /// Mean flash-crowd duration, minutes.
    pub flash_minutes: u64,
    /// Expected region failovers (whole-center drains) per day.
    pub failovers_per_day: f64,
    /// Expected link-degradation episodes per day.
    pub links_per_day: f64,
    /// Distance multiplier while a link is degraded (≥ 1).
    pub link_factor: f64,
    /// Mean link-degradation duration, minutes.
    pub link_minutes: u64,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        Self {
            seed: 0x5CE0,
            partitions_per_day: 0.0,
            partition_minutes: 180,
            migrations_per_day: 0.0,
            migration_cost_ticks: 2,
            flash_per_day: 0.0,
            flash_peak: 2.0,
            flash_minutes: 240,
            failovers_per_day: 0.0,
            links_per_day: 0.0,
            link_factor: 3.0,
            link_minutes: 120,
        }
    }
}

impl ScenarioSpec {
    /// The default nonzero scenario the `fig_scenarios` experiment
    /// sweeps around: a partition every other day with three-hour mean
    /// heals, a couple of zone migrations and one flash crowd per day,
    /// an occasional whole-center drain, and one backbone link
    /// degradation per day.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            partitions_per_day: 0.5,
            migrations_per_day: 2.0,
            flash_per_day: 1.0,
            failovers_per_day: 0.25,
            links_per_day: 1.0,
            ..Self::default()
        }
    }

    /// Parses a declarative spec string (see the type docs for the
    /// grammar). Whitespace around `=` and `,` is ignored and empty
    /// segments are allowed; unknown keys and malformed values are
    /// errors that name the offending token.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut out = Self::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("scenario spec segment `{part}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |e: &dyn std::fmt::Display| {
                format!("scenario spec `{key}`: bad value `{value}`: {e}")
            };
            match key {
                "seed" => out.seed = value.parse().map_err(|e| bad(&e))?,
                "partition" => out.partitions_per_day = value.parse().map_err(|e| bad(&e))?,
                "pmins" => out.partition_minutes = value.parse().map_err(|e| bad(&e))?,
                "migrate" => out.migrations_per_day = value.parse().map_err(|e| bad(&e))?,
                "mcost" => out.migration_cost_ticks = value.parse().map_err(|e| bad(&e))?,
                "flash" => out.flash_per_day = value.parse().map_err(|e| bad(&e))?,
                "fpeak" => out.flash_peak = value.parse().map_err(|e| bad(&e))?,
                "fmins" => out.flash_minutes = value.parse().map_err(|e| bad(&e))?,
                "failover" => out.failovers_per_day = value.parse().map_err(|e| bad(&e))?,
                "link" => out.links_per_day = value.parse().map_err(|e| bad(&e))?,
                "lfactor" => out.link_factor = value.parse().map_err(|e| bad(&e))?,
                "lmins" => out.link_minutes = value.parse().map_err(|e| bad(&e))?,
                other => return Err(format!("unknown scenario spec key `{other}`")),
            }
        }
        if out.flash_peak < 1.0 {
            return Err(format!(
                "fpeak {} below 1 (flash crowds only add demand)",
                out.flash_peak
            ));
        }
        if out.link_factor < 1.0 {
            return Err(format!(
                "lfactor {} below 1 (degraded links only look farther)",
                out.link_factor
            ));
        }
        Ok(out)
    }

    /// True when every event rate is zero — such a spec generates an
    /// empty timeline and callers should run the scenario-free code
    /// path.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.partitions_per_day == 0.0
            && self.migrations_per_day == 0.0
            && self.flash_per_day == 0.0
            && self.failovers_per_day == 0.0
            && self.links_per_day == 0.0
    }

    /// Scales every event rate by `factor` (the `fig_scenarios` sweep
    /// axis). Durations, multipliers, the migration cost and the seed
    /// are unchanged.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            partitions_per_day: self.partitions_per_day * factor,
            migrations_per_day: self.migrations_per_day * factor,
            flash_per_day: self.flash_per_day * factor,
            failovers_per_day: self.failovers_per_day * factor,
            links_per_day: self.links_per_day * factor,
            ..self.clone()
        }
    }

    /// Canonical compact label, stable across runs — embedded in the
    /// trace chunk label so scenario runs sort deterministically and
    /// never collide with scenario-free ones.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "seed={} part={}@{} mig={}x{} flash={}@{}x{} fo={} link={}@{}x{}",
            self.seed,
            self.partitions_per_day,
            self.partition_minutes,
            self.migrations_per_day,
            self.migration_cost_ticks,
            self.flash_per_day,
            self.flash_peak,
            self.flash_minutes,
            self.failovers_per_day,
            self.links_per_day,
            self.link_factor,
            self.link_minutes
        )
    }
}

/// Stream index offsets for the scenario streams. They start at
/// `1 << 22`, strictly above the fault plane's offsets
/// (`STREAM_DROPOUT = 1 << 21` plus a per-center index), so a fault
/// schedule and a scenario timeline sharing one seed still draw from
/// disjoint streams.
const STREAM_PARTITION: u64 = 1 << 22;
const STREAM_MIGRATION: u64 = 1 << 23;
const STREAM_FLASH: u64 = 1 << 24;
const STREAM_FAILOVER: u64 = 1 << 25;
const STREAM_LINK: u64 = 1 << 26;

/// A deterministic, pre-materialised list of scenario events sorted by
/// `(tick, kind rank, payload)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioTimeline {
    events: Vec<ScenarioEvent>,
    label: String,
    /// Unserved player-ticks charged per player each time a group
    /// migrates (copied from [`ScenarioSpec::migration_cost_ticks`]).
    migration_cost_ticks: u64,
}

impl ScenarioTimeline {
    /// Builds a timeline from explicit events (tests, bespoke
    /// scenarios). Events are sorted into the canonical order; the
    /// migration cost is the spec default (override with
    /// [`with_migration_cost`](Self::with_migration_cost)).
    #[must_use]
    pub fn from_events(label: &str, mut events: Vec<ScenarioEvent>) -> Self {
        events.sort_by_key(|e| (e.tick, e.kind.rank(), e.kind.sort_payload()));
        Self {
            events,
            label: label.to_string(),
            migration_cost_ticks: ScenarioSpec::default().migration_cost_ticks,
        }
    }

    /// Sets the per-player migration cost (builder style).
    #[must_use]
    pub fn with_migration_cost(mut self, ticks: u64) -> Self {
        self.migration_cost_ticks = ticks;
        self
    }

    /// Unserved player-ticks charged per player moved by a migration.
    #[must_use]
    pub fn migration_cost_ticks(&self) -> u64 {
        self.migration_cost_ticks
    }

    /// Compiles a declarative spec into a timeline over `ticks` ticks
    /// and `centers` data centers.
    ///
    /// Partition, flash-crowd and link episodes follow non-overlapping
    /// begin/end walks (one active episode of each class at a time, as
    /// in the fault plane's availability walk); migrations and
    /// failovers are memoryless per-tick draws. Every class draws from
    /// its own stateless stream of `spec.seed`, so the timeline is a
    /// pure function of `(spec, ticks, centers)`.
    #[must_use]
    pub fn from_spec(spec: &ScenarioSpec, ticks: u64, centers: usize) -> Self {
        let mut events = Vec::new();
        let per_tick = |rate: f64| (rate / TICKS_PER_DAY as f64).clamp(0.0, 1.0);
        let mean_ticks = |minutes: u64| (minutes as f64 / TICK_MINUTES as f64).max(1.0);
        // Masks address at most the low 63 center bits; federations
        // beyond that (none exist) would leave the tail uncut.
        let maskable = centers.min(63) as u32;
        let p_part = per_tick(spec.partitions_per_day);
        if p_part > 0.0 && maskable >= 2 {
            let mut rng = Rng64::stream(spec.seed, STREAM_PARTITION);
            let mean = mean_ticks(spec.partition_minutes);
            let all = (1u64 << maskable) - 1;
            let mut busy_until = 0u64;
            for t in 0..ticks {
                if t < busy_until || !rng.chance(p_part) {
                    continue;
                }
                // Non-trivial split: at least one center on each side.
                let mask = 1 + rng.below(all - 1);
                let duration = (rng.exponential(1.0 / mean).ceil() as u64).max(1);
                events.push(ScenarioEvent {
                    tick: t,
                    kind: ScenarioEventKind::Partition { mask },
                });
                events.push(ScenarioEvent {
                    tick: t + duration,
                    kind: ScenarioEventKind::Heal,
                });
                busy_until = t + duration;
            }
        }
        let p_link = per_tick(spec.links_per_day);
        if p_link > 0.0 && centers >= 2 {
            let mut rng = Rng64::stream(spec.seed, STREAM_LINK);
            let mean = mean_ticks(spec.link_minutes);
            let mut busy_until = 0u64;
            for t in 0..ticks {
                if t < busy_until || !rng.chance(p_link) {
                    continue;
                }
                let a = rng.below(centers as u64) as u32;
                let mut b = rng.below(centers as u64 - 1) as u32;
                if b >= a {
                    b += 1;
                }
                let duration = (rng.exponential(1.0 / mean).ceil() as u64).max(1);
                events.push(ScenarioEvent {
                    tick: t,
                    kind: ScenarioEventKind::LinkDegrade {
                        a,
                        b,
                        factor: spec.link_factor,
                    },
                });
                events.push(ScenarioEvent {
                    tick: t + duration,
                    kind: ScenarioEventKind::LinkRestore { a, b },
                });
                busy_until = t + duration;
            }
        }
        let p_flash = per_tick(spec.flash_per_day);
        if p_flash > 0.0 {
            let mut rng = Rng64::stream(spec.seed, STREAM_FLASH);
            let mean = mean_ticks(spec.flash_minutes);
            let mut busy_until = 0u64;
            for t in 0..ticks {
                if t < busy_until || !rng.chance(p_flash) {
                    continue;
                }
                let pick = rng.next_u64();
                let duration = (rng.exponential(1.0 / mean).ceil() as u64).max(1);
                events.push(ScenarioEvent {
                    tick: t,
                    kind: ScenarioEventKind::FlashBegin {
                        pick,
                        factor: spec.flash_peak,
                    },
                });
                events.push(ScenarioEvent {
                    tick: t + duration,
                    kind: ScenarioEventKind::FlashEnd { pick },
                });
                busy_until = t + duration;
            }
        }
        let p_mig = per_tick(spec.migrations_per_day);
        if p_mig > 0.0 {
            let mut rng = Rng64::stream(spec.seed, STREAM_MIGRATION);
            for t in 0..ticks {
                if rng.chance(p_mig) {
                    events.push(ScenarioEvent {
                        tick: t,
                        kind: ScenarioEventKind::Migrate {
                            pick: rng.next_u64(),
                        },
                    });
                }
            }
        }
        let p_fo = per_tick(spec.failovers_per_day);
        if p_fo > 0.0 && centers > 0 {
            let mut rng = Rng64::stream(spec.seed, STREAM_FAILOVER);
            for t in 0..ticks {
                if rng.chance(p_fo) {
                    events.push(ScenarioEvent {
                        tick: t,
                        kind: ScenarioEventKind::RegionFailover {
                            center: rng.below(centers as u64) as u32,
                        },
                    });
                }
            }
        }
        Self::from_events(&spec.label(), events).with_migration_cost(spec.migration_cost_ticks)
    }

    /// The events, sorted by `(tick, kind rank, payload)`.
    #[must_use]
    pub fn events(&self) -> &[ScenarioEvent] {
        &self.events
    }

    /// The timeline's label (spec-derived or caller-supplied).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// True when the timeline contains no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Number of events at ticks `<= tick` — how many the engine has
    /// applied once it finishes that tick (events are sorted by tick).
    /// The live telemetry tap reports this as its `scenario_events`
    /// gauge.
    #[must_use]
    pub fn applied_through(&self, tick: u64) -> u64 {
        self.events.partition_point(|e| e.tick <= tick) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_round_trip_with_whitespace() {
        let s = ScenarioSpec::parse(
            " seed = 9 , partition=0.5, pmins = 90 ,migrate=2,mcost=3,flash=1.5,\
             fpeak=2.5,fmins=60,failover=0.1,link=1,lfactor=4,lmins=30",
        )
        .unwrap();
        assert_eq!(s.seed, 9);
        assert_eq!(s.partitions_per_day, 0.5);
        assert_eq!(s.partition_minutes, 90);
        assert_eq!(s.migrations_per_day, 2.0);
        assert_eq!(s.migration_cost_ticks, 3);
        assert_eq!(s.flash_per_day, 1.5);
        assert_eq!(s.flash_peak, 2.5);
        assert_eq!(s.flash_minutes, 60);
        assert_eq!(s.failovers_per_day, 0.1);
        assert_eq!(s.links_per_day, 1.0);
        assert_eq!(s.link_factor, 4.0);
        assert_eq!(s.link_minutes, 30);
        assert!(!s.is_zero());
        assert!(ScenarioSpec::parse("").unwrap().is_zero());
    }

    #[test]
    fn spec_errors_name_the_offending_token() {
        let err = ScenarioSpec::parse("partition=abc").unwrap_err();
        assert!(err.contains("`partition`"), "missing key in: {err}");
        assert!(err.contains("`abc`"), "missing value token in: {err}");
        let err = ScenarioSpec::parse("bogus=1").unwrap_err();
        assert!(err.contains("`bogus`"), "missing key token in: {err}");
        let err = ScenarioSpec::parse("flash").unwrap_err();
        assert!(err.contains("`flash`"), "missing segment token in: {err}");
        assert!(ScenarioSpec::parse("fpeak=0.5").is_err());
        assert!(ScenarioSpec::parse("lfactor=0.9").is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec =
            ScenarioSpec::parse("seed=7,partition=2,migrate=4,flash=2,failover=1,link=2").unwrap();
        let a = ScenarioTimeline::from_spec(&spec, 1440, 12);
        let b = ScenarioTimeline::from_spec(&spec, 1440, 12);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let other = ScenarioSpec { seed: 8, ..spec };
        assert_ne!(a, ScenarioTimeline::from_spec(&other, 1440, 12));
    }

    #[test]
    fn zero_spec_generates_nothing() {
        let timeline = ScenarioTimeline::from_spec(&ScenarioSpec::default(), 1440, 12);
        assert!(timeline.is_empty());
        assert_eq!(timeline.len(), 0);
    }

    #[test]
    fn partition_episodes_never_overlap_and_masks_are_nontrivial() {
        let spec = ScenarioSpec::parse("seed=3,partition=40,pmins=60").unwrap();
        let timeline = ScenarioTimeline::from_spec(&spec, 2000, 5);
        let mut open = false;
        let mut cuts = 0;
        for e in timeline.events() {
            match e.kind {
                ScenarioEventKind::Partition { mask } => {
                    assert!(!open, "partition while previous one open at {e:?}");
                    assert!(mask != 0 && mask != 0b11111, "trivial mask {mask:#b}");
                    open = true;
                    cuts += 1;
                }
                ScenarioEventKind::Heal => {
                    assert!(open, "heal without partition at {e:?}");
                    open = false;
                }
                _ => {}
            }
        }
        assert!(cuts > 5, "expected many partitions, got {cuts}");
    }

    #[test]
    fn link_endpoints_are_distinct_and_in_range() {
        let spec = ScenarioSpec::parse("seed=5,link=40,lmins=30").unwrap();
        let timeline = ScenarioTimeline::from_spec(&spec, 2000, 4);
        let mut degrades = 0;
        for e in timeline.events() {
            if let ScenarioEventKind::LinkDegrade { a, b, factor } = e.kind {
                assert_ne!(a, b);
                assert!(a < 4 && b < 4);
                assert_eq!(factor, 3.0);
                degrades += 1;
            }
        }
        assert!(degrades > 5, "expected many degrades, got {degrades}");
    }

    #[test]
    fn flash_end_carries_the_begin_pick() {
        let spec = ScenarioSpec::parse("seed=11,flash=20,fmins=60").unwrap();
        let timeline = ScenarioTimeline::from_spec(&spec, 2000, 4);
        let mut active: Option<u64> = None;
        for e in timeline.events() {
            match e.kind {
                ScenarioEventKind::FlashBegin { pick, .. } => {
                    assert!(active.is_none());
                    active = Some(pick);
                }
                ScenarioEventKind::FlashEnd { pick } => {
                    assert_eq!(active.take(), Some(pick), "end must target the begin");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn events_sorted_by_tick_then_rank() {
        let spec =
            ScenarioSpec::parse("seed=5,partition=4,migrate=8,flash=4,failover=2,link=4").unwrap();
        let timeline = ScenarioTimeline::from_spec(&spec, 1000, 6);
        let keys: Vec<(u64, u8)> = timeline
            .events()
            .iter()
            .map(|e| (e.tick, e.kind.rank()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn scaled_spec_multiplies_rates_only() {
        let spec = ScenarioSpec::paper_default();
        let double = spec.scaled(2.0);
        assert_eq!(double.partitions_per_day, spec.partitions_per_day * 2.0);
        assert_eq!(double.migrations_per_day, spec.migrations_per_day * 2.0);
        assert_eq!(double.flash_peak, spec.flash_peak);
        assert_eq!(double.migration_cost_ticks, spec.migration_cost_ticks);
        let zero = spec.scaled(0.0);
        assert!(zero.is_zero());
        assert!(ScenarioTimeline::from_spec(&zero, 1440, 12).is_empty());
    }

    #[test]
    fn single_center_platforms_skip_topology_events() {
        let spec = ScenarioSpec::parse("seed=3,partition=40,link=40,migrate=40").unwrap();
        let timeline = ScenarioTimeline::from_spec(&spec, 500, 1);
        assert!(timeline
            .events()
            .iter()
            .all(|e| matches!(e.kind, ScenarioEventKind::Migrate { .. })));
        assert!(!timeline.is_empty(), "migrations still fire");
    }

    #[test]
    fn labels_are_stable_and_kind_labels_cover_the_event_kinds() {
        let spec = ScenarioSpec::paper_default();
        assert_eq!(spec.label(), ScenarioSpec::paper_default().label());
        assert_eq!(ScenarioEventKind::Heal.label(), "heal");
        assert_eq!(
            ScenarioEventKind::Partition { mask: 1 }.label(),
            "partition"
        );
        assert_eq!(
            ScenarioEventKind::LinkDegrade {
                a: 0,
                b: 1,
                factor: 2.0
            }
            .label(),
            "topology_change"
        );
        assert_eq!(
            ScenarioEventKind::FlashBegin {
                pick: 0,
                factor: 2.0
            }
            .label(),
            "flash_crowd"
        );
        assert_eq!(ScenarioEventKind::Migrate { pick: 0 }.label(), "migration");
        assert_eq!(
            ScenarioEventKind::RegionFailover { center: 0 }.label(),
            "migration"
        );
    }
}
