//! `mmog-faults` — the deterministic fault-injection plane.
//!
//! The paper's evaluation (Sec. V) assumes every data center is always
//! up and every granted lease survives its full term. Resource-management
//! work for cloud data centers treats failure handling as a first-class
//! concern next to allocation efficiency, so this crate supplies the
//! missing uncertainty: a [`FaultSchedule`] of timed events — full
//! center outages with repair times, partial capacity degradation,
//! spontaneous lease revocations, and predictor dropouts — that the
//! simulation engine applies from its serial sections.
//!
//! Determinism contract: a schedule is a pure function of a
//! [`FaultSpec`] (or an explicit event list), the tick horizon and the
//! platform size. Generation draws from per-center
//! [`mmog_util::rng::stream_seed`] streams, so the same spec produces
//! the same events regardless of thread count, and runs with faults
//! disabled take code paths byte-identical to a build without this
//! crate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod scenario;

pub use scenario::{ScenarioEvent, ScenarioEventKind, ScenarioSpec, ScenarioTimeline};

use mmog_util::rng::Rng64;
use mmog_util::time::{TICKS_PER_DAY, TICK_MINUTES};
use serde::{Deserialize, Serialize};

/// What a single fault event does when the engine applies it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Full outage: the center goes `Down` and every lease it holds is
    /// revoked (Sec. II-B leases are center-local, so they cannot
    /// migrate out of a failed cluster).
    CenterDown,
    /// Repair: the center returns to `Up` at nominal capacity.
    CenterUp,
    /// Partial degradation: the center stays up but only `fraction` of
    /// its nominal capacity is usable. Existing leases keep running;
    /// new grants see the reduced free pool.
    CenterDegraded {
        /// Usable fraction of nominal capacity in `[0, 1]`.
        fraction: f64,
    },
    /// Spontaneous revocation of the oldest active lease at the center
    /// (e.g. the hoster reclaims capacity mid-term).
    LeaseRevoked,
    /// A tick on which the predictor returns no forecast; the engine
    /// falls back to last-value prediction for every group. The
    /// `center` field of the event is ignored.
    PredictorDropout,
}

impl FaultKind {
    /// Stable lower-case label used in trace events.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::CenterDown => "center_down",
            Self::CenterUp => "center_up",
            Self::CenterDegraded { .. } => "center_degraded",
            Self::LeaseRevoked => "lease_revoked",
            Self::PredictorDropout => "predictor_dropout",
        }
    }

    /// Ordering rank used to sort same-tick events deterministically
    /// (repairs before new failures so a back-to-back repair/outage
    /// pair on one center resolves to the outage).
    fn rank(&self) -> u8 {
        match self {
            Self::CenterUp => 0,
            Self::CenterDown => 1,
            Self::CenterDegraded { .. } => 2,
            Self::LeaseRevoked => 3,
            Self::PredictorDropout => 4,
        }
    }
}

/// One timed fault event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Tick at which the event strikes (applied before the tick's
    /// scoring, so its impact is visible the same tick).
    pub tick: u64,
    /// Index of the affected center in the simulation's platform list
    /// (ignored for [`FaultKind::PredictorDropout`]).
    pub center: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// Declarative fault-model parameters, parseable from the `--faults`
/// CLI flag / `MMOG_FAULTS` environment variable.
///
/// Spec strings are comma-separated `key=value` pairs:
///
/// ```text
/// seed=7,outages=0.5,repair=240,degrade=0.25,dfrac=0.5,dmins=120,revoke=2,dropout=0.01
/// ```
///
/// | key       | meaning                                              |
/// |-----------|------------------------------------------------------|
/// | `seed`    | master seed of the fault streams                     |
/// | `outages` | expected full outages per center per simulated day   |
/// | `repair`  | mean repair time, minutes                            |
/// | `degrade` | expected degradation episodes per center per day     |
/// | `dfrac`   | usable capacity fraction while degraded              |
/// | `dmins`   | mean degradation duration, minutes                   |
/// | `revoke`  | expected spontaneous lease revocations per center/day|
/// | `dropout` | probability a tick is a global predictor dropout     |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Master seed of the fault streams (independent of the
    /// simulation's `master_seed`, so the same workload can be replayed
    /// under different failure histories).
    pub seed: u64,
    /// Expected full outages per center per simulated day.
    pub outages_per_center_day: f64,
    /// Mean repair time, minutes (exponentially distributed, min one
    /// tick).
    pub repair_minutes: u64,
    /// Expected degradation episodes per center per simulated day.
    pub degrade_per_center_day: f64,
    /// Usable capacity fraction while degraded, in `[0, 1]`.
    pub degrade_fraction: f64,
    /// Mean degradation duration, minutes.
    pub degrade_minutes: u64,
    /// Expected spontaneous lease revocations per center per day.
    pub revocations_per_center_day: f64,
    /// Probability that any given tick is a global predictor dropout.
    pub dropout_per_tick: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            seed: 0xFA17,
            outages_per_center_day: 0.0,
            repair_minutes: 240,
            degrade_per_center_day: 0.0,
            degrade_fraction: 0.5,
            degrade_minutes: 120,
            revocations_per_center_day: 0.0,
            dropout_per_tick: 0.0,
        }
    }
}

impl FaultSpec {
    /// The default nonzero fault model the `fig_faults` experiment
    /// sweeps around: a quarter outage per center-day with four-hour
    /// mean repairs, occasional degradations and revocations, and a 1%
    /// predictor-dropout rate.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            outages_per_center_day: 0.25,
            degrade_per_center_day: 0.25,
            revocations_per_center_day: 1.0,
            dropout_per_tick: 0.01,
            ..Self::default()
        }
    }

    /// Parses a declarative spec string (see the type docs for the
    /// grammar). Whitespace around `=` and `,` is ignored and empty
    /// segments are allowed; unknown keys and malformed values are
    /// errors that name the offending token.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut out = Self::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec segment `{part}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let bad =
                |e: &dyn std::fmt::Display| format!("fault spec `{key}`: bad value `{value}`: {e}");
            match key {
                "seed" => out.seed = value.parse().map_err(|e| bad(&e))?,
                "outages" => {
                    out.outages_per_center_day = value.parse().map_err(|e| bad(&e))?;
                }
                "repair" => out.repair_minutes = value.parse().map_err(|e| bad(&e))?,
                "degrade" => {
                    out.degrade_per_center_day = value.parse().map_err(|e| bad(&e))?;
                }
                "dfrac" => out.degrade_fraction = value.parse().map_err(|e| bad(&e))?,
                "dmins" => out.degrade_minutes = value.parse().map_err(|e| bad(&e))?,
                "revoke" => {
                    out.revocations_per_center_day = value.parse().map_err(|e| bad(&e))?;
                }
                "dropout" => out.dropout_per_tick = value.parse().map_err(|e| bad(&e))?,
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        if !(0.0..=1.0).contains(&out.degrade_fraction) {
            return Err(format!("dfrac {} outside [0, 1]", out.degrade_fraction));
        }
        if !(0.0..=1.0).contains(&out.dropout_per_tick) {
            return Err(format!("dropout {} outside [0, 1]", out.dropout_per_tick));
        }
        Ok(out)
    }

    /// True when every event rate is zero — such a spec generates an
    /// empty schedule and callers should run the unfaulted code path.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.outages_per_center_day == 0.0
            && self.degrade_per_center_day == 0.0
            && self.revocations_per_center_day == 0.0
            && self.dropout_per_tick == 0.0
    }

    /// Scales every event rate by `factor` (the `fig_faults` sweep
    /// axis). Repair/degradation durations and the seed are unchanged.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            outages_per_center_day: self.outages_per_center_day * factor,
            degrade_per_center_day: self.degrade_per_center_day * factor,
            revocations_per_center_day: self.revocations_per_center_day * factor,
            dropout_per_tick: (self.dropout_per_tick * factor).min(1.0),
            ..self.clone()
        }
    }

    /// Canonical compact label, stable across runs — embedded in the
    /// trace chunk label so faulted runs sort deterministically and
    /// never collide with unfaulted ones.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "seed={} out={} rep={} deg={}@{}x{} rev={} drop={}",
            self.seed,
            self.outages_per_center_day,
            self.repair_minutes,
            self.degrade_per_center_day,
            self.degrade_fraction,
            self.degrade_minutes,
            self.revocations_per_center_day,
            self.dropout_per_tick
        )
    }
}

/// Stream index offsets keeping the per-center fault streams disjoint
/// (availability episodes, revocations) from the global dropout stream.
const STREAM_AVAILABILITY: u64 = 0;
const STREAM_REVOCATION: u64 = 1 << 20;
const STREAM_DROPOUT: u64 = 1 << 21;

/// A deterministic, pre-materialised list of fault events sorted by
/// `(tick, center, kind)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    label: String,
}

impl FaultSchedule {
    /// Builds a schedule from explicit events (tests, bespoke
    /// scenarios). Events are sorted into the canonical order.
    #[must_use]
    pub fn from_events(label: &str, mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| (e.tick, e.center, e.kind.rank()));
        Self {
            events,
            label: label.to_string(),
        }
    }

    /// Generates a schedule from a declarative spec over `ticks` ticks
    /// and `centers` data centers.
    ///
    /// Per center, one seed stream drives an alternating
    /// availability walk — at every healthy tick an outage strikes with
    /// probability `outages/720` (going `Down`, all leases revoked,
    /// repair after an exponential holding time) or a degradation with
    /// probability `degrade/720`; episodes never overlap on a center. A
    /// second per-center stream draws spontaneous single-lease
    /// revocations, and one global stream draws predictor-dropout
    /// ticks. Streams are indexed statelessly from `spec.seed`, so the
    /// schedule is a pure function of `(spec, ticks, centers)`.
    #[must_use]
    pub fn from_spec(spec: &FaultSpec, ticks: u64, centers: usize) -> Self {
        let mut events = Vec::new();
        let p_out = (spec.outages_per_center_day / TICKS_PER_DAY as f64).clamp(0.0, 1.0);
        let p_deg = (spec.degrade_per_center_day / TICKS_PER_DAY as f64).clamp(0.0, 1.0);
        let p_rev = (spec.revocations_per_center_day / TICKS_PER_DAY as f64).clamp(0.0, 1.0);
        let repair_ticks_mean = (spec.repair_minutes as f64 / TICK_MINUTES as f64).max(1.0);
        let degrade_ticks_mean = (spec.degrade_minutes as f64 / TICK_MINUTES as f64).max(1.0);
        for center in 0..centers {
            if p_out > 0.0 || p_deg > 0.0 {
                let mut rng = Rng64::stream(spec.seed, STREAM_AVAILABILITY + center as u64);
                let mut busy_until = 0u64;
                for t in 0..ticks {
                    if t < busy_until {
                        continue;
                    }
                    // One draw decides outage vs degradation vs nothing;
                    // the episode length comes from the same stream so
                    // the walk stays self-contained.
                    let roll = rng.f64();
                    let (kind, mean) = if roll < p_out {
                        (FaultKind::CenterDown, repair_ticks_mean)
                    } else if roll < p_out + p_deg {
                        (
                            FaultKind::CenterDegraded {
                                fraction: spec.degrade_fraction,
                            },
                            degrade_ticks_mean,
                        )
                    } else {
                        continue;
                    };
                    let duration = (rng.exponential(1.0 / mean).ceil() as u64).max(1);
                    events.push(FaultEvent {
                        tick: t,
                        center,
                        kind,
                    });
                    events.push(FaultEvent {
                        tick: t + duration,
                        center,
                        kind: FaultKind::CenterUp,
                    });
                    busy_until = t + duration;
                }
            }
            if p_rev > 0.0 {
                let mut rng = Rng64::stream(spec.seed, STREAM_REVOCATION + center as u64);
                for t in 0..ticks {
                    if rng.chance(p_rev) {
                        events.push(FaultEvent {
                            tick: t,
                            center,
                            kind: FaultKind::LeaseRevoked,
                        });
                    }
                }
            }
        }
        if spec.dropout_per_tick > 0.0 {
            let mut rng = Rng64::stream(spec.seed, STREAM_DROPOUT);
            for t in 0..ticks {
                if rng.chance(spec.dropout_per_tick) {
                    events.push(FaultEvent {
                        tick: t,
                        center: 0,
                        kind: FaultKind::PredictorDropout,
                    });
                }
            }
        }
        // Repair events may land past the horizon; the engine simply
        // never reaches them, but they keep the schedule self-contained
        // if the run is extended.
        Self::from_events(&spec.label(), events)
    }

    /// The events, sorted by `(tick, center, kind)`.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The schedule's label (spec-derived or caller-supplied).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// True when the schedule contains no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Number of events at ticks `<= tick` — how many the engine has
    /// applied once it finishes that tick (events are sorted by tick).
    /// The live telemetry tap reports this as its `fault_events` gauge.
    #[must_use]
    pub fn applied_through(&self, tick: u64) -> u64 {
        self.events.partition_point(|e| e.tick <= tick) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_round_trip() {
        let s = FaultSpec::parse(
            "seed=9,outages=0.5,repair=240,degrade=0.25,dfrac=0.4,dmins=60,revoke=2,dropout=0.02",
        )
        .unwrap();
        assert_eq!(s.seed, 9);
        assert_eq!(s.outages_per_center_day, 0.5);
        assert_eq!(s.repair_minutes, 240);
        assert_eq!(s.degrade_per_center_day, 0.25);
        assert_eq!(s.degrade_fraction, 0.4);
        assert_eq!(s.degrade_minutes, 60);
        assert_eq!(s.revocations_per_center_day, 2.0);
        assert_eq!(s.dropout_per_tick, 0.02);
        assert!(!s.is_zero());
        // Re-parsing the label-ish canonical form is not required, but
        // an empty spec is the zero model.
        let zero = FaultSpec::parse("").unwrap();
        assert!(zero.is_zero());
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(FaultSpec::parse("bogus=1").is_err());
        assert!(FaultSpec::parse("outages").is_err());
        assert!(FaultSpec::parse("outages=abc").is_err());
        assert!(FaultSpec::parse("dfrac=1.5").is_err());
        assert!(FaultSpec::parse("dropout=-0.1").is_err());
    }

    #[test]
    fn spec_accepts_whitespace_around_separators() {
        let s = FaultSpec::parse("  outages = 0.5 ,\trepair =\t240 , seed= 7 ").unwrap();
        assert_eq!(s.outages_per_center_day, 0.5);
        assert_eq!(s.repair_minutes, 240);
        assert_eq!(s.seed, 7);
    }

    #[test]
    fn spec_errors_name_the_offending_token() {
        let err = FaultSpec::parse("outages=abc").unwrap_err();
        assert!(err.contains("`outages`"), "missing key in: {err}");
        assert!(err.contains("`abc`"), "missing value token in: {err}");
        let err = FaultSpec::parse("repair = 12x").unwrap_err();
        assert!(err.contains("`12x`"), "missing value token in: {err}");
        let err = FaultSpec::parse("bogus=1").unwrap_err();
        assert!(err.contains("`bogus`"), "missing key token in: {err}");
        let err = FaultSpec::parse("outages").unwrap_err();
        assert!(err.contains("`outages`"), "missing segment token in: {err}");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = FaultSpec::parse("seed=7,outages=1,revoke=3,dropout=0.05,degrade=0.5").unwrap();
        let a = FaultSchedule::from_spec(&spec, 1440, 17);
        let b = FaultSchedule::from_spec(&spec, 1440, 17);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // A different seed moves the events.
        let other = FaultSpec { seed: 8, ..spec };
        assert_ne!(a, FaultSchedule::from_spec(&other, 1440, 17));
    }

    #[test]
    fn zero_spec_generates_nothing() {
        let schedule = FaultSchedule::from_spec(&FaultSpec::default(), 1440, 17);
        assert!(schedule.is_empty());
        assert_eq!(schedule.len(), 0);
    }

    #[test]
    fn availability_episodes_never_overlap_per_center() {
        let spec = FaultSpec::parse("seed=3,outages=20,repair=120,degrade=20,dmins=60").unwrap();
        let schedule = FaultSchedule::from_spec(&spec, 2000, 4);
        for c in 0..4 {
            let mut down = false;
            for e in schedule.events().iter().filter(|e| e.center == c) {
                match e.kind {
                    FaultKind::CenterDown | FaultKind::CenterDegraded { .. } => {
                        assert!(!down, "episode started while previous one open at {e:?}");
                        down = true;
                    }
                    FaultKind::CenterUp => {
                        assert!(down, "repair without episode at {e:?}");
                        down = false;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn events_sorted_by_tick() {
        let spec = FaultSpec::parse("seed=5,outages=4,revoke=4,dropout=0.05").unwrap();
        let schedule = FaultSchedule::from_spec(&spec, 1000, 6);
        let ticks: Vec<u64> = schedule.events().iter().map(|e| e.tick).collect();
        let mut sorted = ticks.clone();
        sorted.sort_unstable();
        assert_eq!(ticks, sorted);
    }

    #[test]
    fn scaled_spec_multiplies_rates() {
        let spec = FaultSpec::paper_default();
        let double = spec.scaled(2.0);
        assert_eq!(
            double.outages_per_center_day,
            spec.outages_per_center_day * 2.0
        );
        let zero = spec.scaled(0.0);
        assert!(zero.is_zero());
        assert!(FaultSchedule::from_spec(&zero, 1440, 17).is_empty());
    }

    #[test]
    fn explicit_events_sort_canonically() {
        let schedule = FaultSchedule::from_events(
            "test",
            vec![
                FaultEvent {
                    tick: 10,
                    center: 1,
                    kind: FaultKind::CenterDown,
                },
                FaultEvent {
                    tick: 10,
                    center: 1,
                    kind: FaultKind::CenterUp,
                },
                FaultEvent {
                    tick: 5,
                    center: 0,
                    kind: FaultKind::LeaseRevoked,
                },
            ],
        );
        assert_eq!(schedule.events()[0].tick, 5);
        assert_eq!(schedule.events()[1].kind, FaultKind::CenterUp);
        assert_eq!(schedule.events()[2].kind, FaultKind::CenterDown);
        assert_eq!(schedule.label(), "test");
    }
}
