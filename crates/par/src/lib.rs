//! Deterministic fork-join parallelism for the `mmog-dc` workspace.
//!
//! The hermetic build environment has no crates.io access, so `rayon`
//! is unavailable; this crate provides the narrow slice of it the
//! simulator needs, built on `std::thread` only:
//!
//! - [`par_map`] — an order-preserving parallel map over a slice. The
//!   output vector is always in input order, so reductions over it are
//!   bit-identical to the serial fold regardless of thread scheduling.
//! - [`par_for_each_mut`] — disjoint mutable fan-out: every element is
//!   claimed by exactly one worker through an atomic cursor.
//! - [`Pool`] — a persistent worker pool with a generation barrier, for
//!   hot loops (the per-tick engine fan-out) where spawning scoped
//!   threads each iteration would dominate the work itself.
//!
//! # Determinism contract
//!
//! All entry points guarantee: (1) each index is processed exactly once;
//! (2) results land in input order; (3) with `jobs() == 1` the code path
//! is the plain serial loop, bit-for-bit. Callers keep the contract by
//! making per-index work self-contained — any randomness must come from
//! a per-index seeded stream, never from a generator shared across
//! indices.
//!
//! # Nesting
//!
//! Parallel regions do not nest: work spawned from inside a worker runs
//! serially on that worker. This bounds the process to one level of
//! fan-out (at most `jobs()` threads busy at a time) no matter how the
//! sweep, engine and cache layers stack.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Pool/fan-out instrumentation. Worker counts and dispatch volumes
/// depend on `--jobs` and scheduling, so everything here lives in the
/// observability plane's `Timing` domain — exported for inspection,
/// masked by determinism comparisons.
mod obs_hooks {
    use mmog_obs::{counter, gauge, Counter, Domain, Gauge};
    use std::sync::{Arc, OnceLock};

    fn stat<T>(cell: &'static OnceLock<Arc<T>>, init: impl FnOnce() -> Arc<T>) -> &'static Arc<T> {
        cell.get_or_init(init)
    }

    /// Records one parallel-map region and the threads it applied.
    pub(crate) fn record_par_map(workers: usize, items: usize) {
        static REGIONS: OnceLock<Arc<Counter>> = OnceLock::new();
        static WORKERS: OnceLock<Arc<Gauge>> = OnceLock::new();
        stat(&REGIONS, || counter("par.map.regions", Domain::Timing)).incr();
        stat(&WORKERS, || gauge("par.map.workers_max", Domain::Timing))
            .set_max(workers.min(items) as i64);
    }

    /// Records one pool dispatch: fan-out width and worker utilization.
    pub(crate) fn record_dispatch(threads: usize, items: usize) {
        static DISPATCHES: OnceLock<Arc<Counter>> = OnceLock::new();
        static QUEUE: OnceLock<Arc<Gauge>> = OnceLock::new();
        static ACTIVE: OnceLock<Arc<Gauge>> = OnceLock::new();
        stat(&DISPATCHES, || {
            counter("par.pool.dispatches", Domain::Timing)
        })
        .incr();
        stat(&QUEUE, || gauge("par.pool.queue_depth_max", Domain::Timing)).set_max(items as i64);
        stat(&ACTIVE, || {
            gauge("par.pool.active_workers_max", Domain::Timing)
        })
        .set_max(threads.min(items) as i64);
    }

    /// Records a pool being built with the given thread count.
    pub(crate) fn record_pool(threads: usize) {
        static POOLS: OnceLock<Arc<Counter>> = OnceLock::new();
        static THREADS: OnceLock<Arc<Gauge>> = OnceLock::new();
        stat(&POOLS, || counter("par.pool.created", Domain::Timing)).incr();
        stat(&THREADS, || gauge("par.pool.threads_max", Domain::Timing)).set_max(threads as i64);
    }
}

/// Global worker-count override; 0 means "not set, use the default".
static JOBS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while the current thread executes inside a parallel region.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// The number of logical CPUs the process may use.
#[must_use]
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Sets the global worker count. `0` restores the default (the
/// `MMOG_JOBS` environment variable if set, else all logical CPUs).
/// `1` disables parallelism entirely — every entry point degenerates to
/// the serial loop.
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The effective worker count for new parallel regions.
#[must_use]
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::env::var("MMOG_JOBS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(available_jobs),
        n => n,
    }
}

/// Whether the current thread is already inside a parallel region (new
/// regions started here run serially).
#[must_use]
pub fn in_parallel() -> bool {
    IN_PARALLEL.with(Cell::get)
}

/// Marks the current thread as inside a parallel region for the scope
/// of `f`.
fn enter_parallel<R>(f: impl FnOnce() -> R) -> R {
    IN_PARALLEL.with(|flag| {
        let prev = flag.replace(true);
        let out = f();
        flag.set(prev);
        out
    })
}

/// Order-preserving parallel map: `out[i] == f(&items[i])` for every
/// `i`, with the closure fanned across up to [`jobs`] threads. Falls
/// back to the serial loop when `jobs() <= 1`, when the slice has fewer
/// than two elements, or when called from inside another parallel
/// region.
///
/// # Panics
/// Propagates the first panic raised by `f`.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs().min(n);
    if workers <= 1 || in_parallel() {
        return items.iter().map(f).collect();
    }
    obs_hooks::record_par_map(workers, n);
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    enter_parallel(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(&items[i])));
                        }
                        local
                    })
                })
            })
            .collect();
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for h in handles {
            for (i, r) in h.join().expect("parallel map worker panicked") {
                slots[i] = Some(r);
            }
        }
        slots
            .into_iter()
            .map(|r| r.expect("every index is claimed exactly once"))
            .collect()
    })
}

/// Raw-pointer wrapper so a slice base can cross thread boundaries; the
/// atomic cursor guarantees each index is visited by exactly one worker.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Disjoint mutable fan-out: runs `f(i, &mut items[i])` for every index,
/// each claimed by exactly one worker. Serial under the same conditions
/// as [`par_map`].
///
/// # Panics
/// Propagates the first panic raised by `f`.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let workers = jobs().min(n);
    if workers <= 1 || in_parallel() {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let base = SendPtr(items.as_mut_ptr());
    let next = AtomicUsize::new(0);
    let base = &base;
    let next = &next;
    let f = &f;
    std::thread::scope(|s| {
        for _ in 0..workers {
            // Capture the SendPtr wrapper by reference, not its raw
            // field (2021 disjoint capture would otherwise move the
            // bare `*mut T`, which is not Send).
            s.spawn(move || {
                enter_parallel(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // SAFETY: `i` is claimed exactly once via the atomic
                    // cursor, so this is the only live reference to
                    // items[i]; the scope keeps the slice borrow alive.
                    f(i, unsafe { &mut *base.0.add(i) });
                })
            });
        }
    });
}

/// A unit of pool work: a trampoline plus its type-erased context.
#[derive(Clone, Copy)]
struct Job {
    run: unsafe fn(*const ()),
    ctx: *const (),
}

// SAFETY: the context pointer targets a stack frame that provably
// outlives the job (the dispatcher blocks until every worker reports
// completion before returning).
unsafe impl Send for Job {}

struct PoolState {
    epoch: u64,
    job: Option<Job>,
    active: usize,
    panicked: bool,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work: Condvar,
    done: Condvar,
}

/// A persistent worker pool with a generation barrier.
///
/// Workers park on a condvar between dispatches, so issuing a fan-out
/// costs two lock round-trips instead of thread spawns — cheap enough
/// to call once (or several times) per simulation tick. The dispatching
/// thread participates in the work itself, so a pool built with
/// `Pool::new(j)` applies `j` threads of compute using `j - 1` parked
/// workers.
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Creates a pool applying `jobs` total threads (the caller counts
    /// as one; `jobs <= 1` parks no workers and dispatch degenerates to
    /// the serial loop).
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                active: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers: Vec<JoinHandle<()>> = (1..jobs.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        obs_hooks::record_pool(workers.len() + 1);
        Self { shared, workers }
    }

    /// A pool sized by the global [`jobs`] setting.
    #[must_use]
    pub fn with_global_jobs() -> Self {
        Self::new(jobs())
    }

    /// Total threads applied to each dispatch (workers + caller).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Disjoint mutable fan-out across the pool: `f(i, &mut items[i])`
    /// for every index, caller participating. Serial when the pool has
    /// no parked workers.
    ///
    /// # Panics
    /// Propagates panics raised by `f` (the pool stays usable).
    pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let n = items.len();
        if self.workers.is_empty() || n <= 1 {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        obs_hooks::record_dispatch(self.threads(), n);

        struct Ctx<T, F> {
            base: SendPtr<T>,
            len: usize,
            next: AtomicUsize,
            f: F,
        }

        /// Claims indices until the cursor passes the end.
        unsafe fn trampoline<T, F: Fn(usize, &mut T) + Sync>(p: *const ()) {
            // SAFETY: the dispatcher keeps the Ctx alive until every
            // worker has decremented `active`, which happens only after
            // this function returns.
            let ctx = unsafe { &*(p.cast::<Ctx<T, F>>()) };
            loop {
                let i = ctx.next.fetch_add(1, Ordering::Relaxed);
                if i >= ctx.len {
                    break;
                }
                // SAFETY: each index is claimed exactly once, so this is
                // the only live reference to items[i].
                (ctx.f)(i, unsafe { &mut *ctx.base.0.add(i) });
            }
        }

        let ctx = Ctx {
            base: SendPtr(items.as_mut_ptr()),
            len: n,
            next: AtomicUsize::new(0),
            f,
        };
        let job = Job {
            run: trampoline::<T, F>,
            ctx: std::ptr::from_ref(&ctx).cast(),
        };
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.job = Some(job);
            st.epoch += 1;
            st.active = self.workers.len();
            st.panicked = false;
            self.shared.work.notify_all();
        }
        // The caller is one of the compute threads.
        let caller_result = catch_unwind(AssertUnwindSafe(|| {
            enter_parallel(|| unsafe { (job.run)(job.ctx) });
        }));
        // Wait for every worker before ctx leaves scope.
        let panicked = {
            let mut st = self.shared.state.lock().expect("pool lock");
            while st.active > 0 {
                st = self.shared.done.wait(st).expect("pool wait");
            }
            st.job = None;
            st.panicked
        };
        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
        assert!(!panicked, "pool worker panicked during fan-out");
    }

    /// Disjoint mutable fan-out over two equally long slices:
    /// `f(i, &mut a[i], &mut b[i])` for every index, caller
    /// participating. The struct-of-arrays engine uses this to pair a
    /// group's cold state (provisioner, model) with its hot state
    /// (contiguous per-tick scratch) without interleaving them in one
    /// struct. Serial when the pool has no parked workers.
    ///
    /// # Panics
    /// Panics when the slices differ in length; propagates panics raised
    /// by `f` (the pool stays usable).
    pub fn for_each_mut2<A, B, F>(&self, a: &mut [A], b: &mut [B], f: F)
    where
        A: Send,
        B: Send,
        F: Fn(usize, &mut A, &mut B) + Sync,
    {
        let n = a.len();
        assert_eq!(n, b.len(), "for_each_mut2 slices must pair up");
        if self.workers.is_empty() || n <= 1 {
            for (i, (ai, bi)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
                f(i, ai, bi);
            }
            return;
        }
        obs_hooks::record_dispatch(self.threads(), n);

        struct Ctx<A, B, F> {
            a: SendPtr<A>,
            b: SendPtr<B>,
            len: usize,
            next: AtomicUsize,
            f: F,
        }

        /// Claims indices until the cursor passes the end.
        unsafe fn trampoline<A, B, F: Fn(usize, &mut A, &mut B) + Sync>(p: *const ()) {
            // SAFETY: the dispatcher keeps the Ctx alive until every
            // worker has decremented `active`, which happens only after
            // this function returns.
            let ctx = unsafe { &*(p.cast::<Ctx<A, B, F>>()) };
            loop {
                let i = ctx.next.fetch_add(1, Ordering::Relaxed);
                if i >= ctx.len {
                    break;
                }
                // SAFETY: each index is claimed exactly once, so these
                // are the only live references to a[i] and b[i].
                (ctx.f)(i, unsafe { &mut *ctx.a.0.add(i) }, unsafe {
                    &mut *ctx.b.0.add(i)
                });
            }
        }

        let ctx = Ctx {
            a: SendPtr(a.as_mut_ptr()),
            b: SendPtr(b.as_mut_ptr()),
            len: n,
            next: AtomicUsize::new(0),
            f,
        };
        let job = Job {
            run: trampoline::<A, B, F>,
            ctx: std::ptr::from_ref(&ctx).cast(),
        };
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.job = Some(job);
            st.epoch += 1;
            st.active = self.workers.len();
            st.panicked = false;
            self.shared.work.notify_all();
        }
        // The caller is one of the compute threads.
        let caller_result = catch_unwind(AssertUnwindSafe(|| {
            enter_parallel(|| unsafe { (job.run)(job.ctx) });
        }));
        // Wait for every worker before ctx leaves scope.
        let panicked = {
            let mut st = self.shared.state.lock().expect("pool lock");
            while st.active > 0 {
                st = self.shared.done.wait(st).expect("pool wait");
            }
            st.job = None;
            st.panicked
        };
        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
        assert!(!panicked, "pool worker panicked during fan-out");
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool lock");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.expect("epoch advanced without a job");
                }
                st = shared.work.wait(st).expect("pool wait");
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            enter_parallel(|| unsafe { (job.run)(job.ctx) });
        }));
        let mut st = shared.state.lock().expect("pool lock");
        if result.is_err() {
            st.panicked = true;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_all();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that touch the global jobs setting (the test
    /// harness runs tests concurrently in one process).
    static JOBS_LOCK: Mutex<()> = Mutex::new(());

    fn jobs_guard() -> std::sync::MutexGuard<'static, ()> {
        JOBS_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..500).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_serial_for_any_jobs() {
        let _guard = jobs_guard();
        let items: Vec<u64> = (0..200).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x)).collect();
        for j in [1, 2, 3, 8] {
            set_jobs(j);
            assert_eq!(par_map(&items, |&x| x.wrapping_mul(x)), serial, "jobs={j}");
        }
        set_jobs(0);
    }

    #[test]
    fn par_for_each_mut_touches_every_element_once() {
        let _guard = jobs_guard();
        let mut items = vec![0u32; 300];
        set_jobs(4);
        par_for_each_mut(&mut items, |i, v| *v += i as u32 + 1);
        set_jobs(0);
        for (i, v) in items.iter().enumerate() {
            assert_eq!(*v, i as u32 + 1);
        }
    }

    #[test]
    fn nested_regions_run_serially() {
        let _guard = jobs_guard();
        set_jobs(4);
        let outer: Vec<usize> = (0..4).collect();
        let out = par_map(&outer, |&i| {
            assert!(in_parallel());
            let inner: Vec<usize> = (0..10).collect();
            // Nested call must not spawn; it still returns in order.
            par_map(&inner, |&j| i * 100 + j)
        });
        set_jobs(0);
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(inner.len(), 10);
            assert_eq!(inner[3], i * 100 + 3);
        }
    }

    #[test]
    fn pool_fans_out_and_is_reusable() {
        let pool = Pool::new(4);
        assert_eq!(pool.threads(), 4);
        let mut items = vec![0u64; 1000];
        for round in 1..=3u64 {
            pool.for_each_mut(&mut items, |i, v| *v += i as u64 * round);
        }
        let expected: Vec<u64> = (0..1000).map(|i| i * (1 + 2 + 3)).collect();
        assert_eq!(items, expected);
    }

    #[test]
    fn pool_for_each_mut2_pairs_slices() {
        let pool = Pool::new(4);
        let mut hot = vec![0u64; 777];
        let mut cold: Vec<u64> = (0..777).collect();
        for round in 1..=2u64 {
            pool.for_each_mut2(&mut hot, &mut cold, |i, h, c| {
                *h += *c * round;
                *c += i as u64;
            });
        }
        for (i, h) in hot.iter().enumerate() {
            let i = i as u64;
            // Round 1: h += i; cold becomes 2i. Round 2: h += 2·2i.
            assert_eq!(*h, i + 4 * i);
        }
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn pool_for_each_mut2_rejects_mismatched_lengths() {
        let pool = Pool::new(1);
        let mut a = vec![0u8; 3];
        let mut b = vec![0u8; 4];
        pool.for_each_mut2(&mut a, &mut b, |_, _, _| {});
    }

    #[test]
    fn pool_with_one_thread_is_serial() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut items = vec![1u8; 17];
        pool.for_each_mut(&mut items, |_, v| *v *= 2);
        assert!(items.iter().all(|&v| v == 2));
    }

    #[test]
    fn pool_survives_worker_panics() {
        let pool = Pool::new(3);
        let mut items = vec![0i32; 64];
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.for_each_mut(&mut items, |i, _| assert!(i != 40, "boom"));
        }));
        assert!(result.is_err());
        // The pool remains usable after the panic.
        pool.for_each_mut(&mut items, |_, v| *v = 7);
        assert!(items.iter().all(|&v| v == 7));
    }

    #[test]
    fn jobs_setting_round_trips() {
        let _guard = jobs_guard();
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
    }
}
