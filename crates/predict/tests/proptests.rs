//! Property-based tests for the predictors.

use mmog_predict::ar::{autocovariance, levinson_durbin, ArPredictor};
use mmog_predict::eval::prediction_error;
use mmog_predict::preprocess::{poly_smooth, polyfit, polyval, Normalizer};
use mmog_predict::simple::{
    ExpSmoothing, Holt, LastValue, MovingAverage, RunningAverage, SeasonalNaive,
    SlidingWindowMedian,
};
use mmog_predict::traits::{predictions_for, Predictor};
use proptest::prelude::*;

fn loads() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..10_000.0, 1..200)
}

fn all_simple() -> Vec<Box<dyn Predictor>> {
    vec![
        Box::new(LastValue::new()),
        Box::new(RunningAverage::new()),
        Box::new(MovingAverage::new(7)),
        Box::new(SlidingWindowMedian::new(7)),
        Box::new(ExpSmoothing::new(0.25)),
        Box::new(ExpSmoothing::new(0.75)),
        Box::new(Holt::new(0.5, 0.3)),
        Box::new(ArPredictor::new(3, 16, 128)),
        Box::new(SeasonalNaive::new(12, 0.7)),
    ]
}

proptest! {
    #[test]
    fn predictions_are_finite_for_finite_inputs(xs in loads()) {
        for mut p in all_simple() {
            let preds = predictions_for(p.as_mut(), &xs);
            prop_assert_eq!(preds.len(), xs.len());
            for v in &preds {
                prop_assert!(v.is_finite(), "{}: {v}", p.name());
            }
        }
    }

    #[test]
    fn reset_restores_cold_start(xs in loads()) {
        for mut p in all_simple() {
            for &x in &xs {
                p.observe(x);
            }
            p.reset();
            prop_assert_eq!(p.predict(), 0.0, "{} after reset", p.name());
        }
    }

    #[test]
    fn window_predictors_bounded_by_window_extremes(xs in prop::collection::vec(0.0f64..1e4, 8..100)) {
        // Moving average and sliding median stay within the window's
        // min..max once the window is full.
        let mut ma = MovingAverage::new(5);
        let mut med = SlidingWindowMedian::new(5);
        for (i, &x) in xs.iter().enumerate() {
            ma.observe(x);
            med.observe(x);
            if i >= 4 {
                let window = &xs[i - 4..=i];
                let lo = window.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = window.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(ma.predict() >= lo - 1e-9 && ma.predict() <= hi + 1e-9);
                prop_assert!(med.predict() >= lo - 1e-9 && med.predict() <= hi + 1e-9);
            }
        }
    }

    #[test]
    fn exp_smoothing_bounded_by_history_extremes(xs in loads(), alpha in 0.01f64..=1.0) {
        let mut p = ExpSmoothing::new(alpha);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in &xs {
            p.observe(x);
            lo = lo.min(x);
            hi = hi.max(x);
            prop_assert!(p.predict() >= lo - 1e-9 && p.predict() <= hi + 1e-9);
        }
    }

    #[test]
    fn error_metric_zero_iff_perfect(xs in prop::collection::vec(1.0f64..1e4, 1..100)) {
        prop_assert_eq!(prediction_error(&xs, &xs, 0), 0.0);
        // Shifting every prediction strictly up yields positive error.
        let shifted: Vec<f64> = xs.iter().map(|x| x + 1.0).collect();
        prop_assert!(prediction_error(&xs, &shifted, 0) > 0.0);
    }

    #[test]
    fn error_metric_scale_invariant(xs in prop::collection::vec(1.0f64..1e4, 2..100), k in 0.1f64..100.0) {
        // Scaling both series by k leaves the relative error unchanged.
        let preds: Vec<f64> = xs.iter().map(|x| x * 1.1).collect();
        let e1 = prediction_error(&xs, &preds, 0);
        let sx: Vec<f64> = xs.iter().map(|x| x * k).collect();
        let sp: Vec<f64> = preds.iter().map(|x| x * k).collect();
        let e2 = prediction_error(&sx, &sp, 0);
        prop_assert!((e1 - e2).abs() < 1e-6);
    }

    #[test]
    fn polyfit_interpolates_exact_degree(coeffs in prop::collection::vec(-10.0f64..10.0, 1..4)) {
        // Sample a polynomial exactly and refit: polyval must agree.
        let ys: Vec<f64> = (0..10).map(|i| polyval(&coeffs, f64::from(i))).collect();
        let fitted = polyfit(&ys, coeffs.len() - 1).unwrap();
        for i in 0..10 {
            let x = f64::from(i);
            prop_assert!((polyval(&fitted, x) - ys[i as usize]).abs() < 1e-5);
        }
    }

    #[test]
    fn poly_smooth_preserves_length(xs in prop::collection::vec(-1e3f64..1e3, 1..30), d in 0usize..4) {
        prop_assert_eq!(poly_smooth(&xs, d).len(), xs.len());
    }

    #[test]
    fn normalizer_round_trips(scale in 0.1f64..1e6, x in 0.0f64..1e6) {
        let n = Normalizer::new(scale);
        let y = n.norm(x);
        prop_assert!((n.denorm(y) - x).abs() < 1e-6 * x.max(1.0));
    }

    #[test]
    fn levinson_coefficients_are_finite(xs in prop::collection::vec(-1e3f64..1e3, 10..200), order in 1usize..6) {
        let cov = autocovariance(&xs, order);
        if let Some(phi) = levinson_durbin(&cov, order) {
            prop_assert_eq!(phi.len(), order);
            for c in &phi {
                prop_assert!(c.is_finite());
            }
        }
    }
}
