//! The neural-network load predictor of Sec. IV-C.
//!
//! "We have developed a neural network-based predictor which uses
//! historical information collected by tracing the execution of MMOGs…
//! It is a three layered MLP with a (6,3,1) structure (input, hidden and
//! output neuron layers). The signal preprocessors are based on several
//! polynomial functions which have the purpose of removing the unwanted
//! noise from the processed signal.
//!
//! Two off-line phases are required before deploying: the **data set
//! collection phase** … and the **training phase** [which] uses most of
//! the previously collected samples as training sets, and the remaining
//! samples as test sets. The training phase runs for a number of
//! training eras, until a convergence criterion is fulfilled."

use crate::mlp::{self, Mlp};
use crate::preprocess::{poly_extrapolate, poly_smooth_into, Normalizer, PolyScratch};
use crate::traits::Predictor;
use mmog_util::rng::Rng64;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::VecDeque;

/// Hyper-parameters of the neural predictor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeuralConfig {
    /// Input window length (6 in the paper).
    pub window: usize,
    /// Hidden layer width (3 in the paper).
    pub hidden: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// SGD momentum.
    pub momentum: f64,
    /// Maximum training eras.
    pub max_eras: usize,
    /// Convergence criterion: stop when the test loss improves by less
    /// than this relative amount for three consecutive eras.
    pub convergence_tol: f64,
    /// Fraction of the collected samples used for training (the rest
    /// become the test sets of step (3) of each era).
    pub train_fraction: f64,
    /// Degree of the polynomial noise-removal preprocessor.
    pub poly_degree: usize,
    /// Whether to keep adapting online after deployment.
    pub online_learning: bool,
    /// Weight-initialisation seed.
    pub seed: u64,
}

impl Default for NeuralConfig {
    fn default() -> Self {
        Self {
            window: 6,
            hidden: 3,
            // Per-sample SGD: heavy momentum (>0.5) oscillates on the
            // tiny (6,3,1) network, so stay conservative.
            learning_rate: 0.05,
            momentum: 0.3,
            max_eras: 200,
            convergence_tol: 1e-4,
            train_fraction: 0.8,
            poly_degree: 2,
            online_learning: true,
            seed: 0x5EED,
        }
    }
}

/// Outcome of the offline training phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Eras actually run before convergence (or the cap).
    pub eras: usize,
    /// Final RMSE on the held-out test set, in normalised units.
    pub test_rmse: f64,
    /// Number of training samples.
    pub train_samples: usize,
    /// Number of test samples.
    pub test_samples: usize,
}

/// Reusable per-predictor buffers: the MLP forward/backprop scratch
/// and the polynomial-preprocessor workspace. Held in a [`RefCell`] so
/// the read-only [`Predictor::predict`] path can run the network
/// without allocating.
#[derive(Debug, Clone, Default)]
struct Buffers {
    mlp: mlp::Scratch,
    poly: PolyScratch,
}

/// The deployable neural predictor.
#[derive(Debug, Clone)]
pub struct NeuralPredictor {
    cfg: NeuralConfig,
    net: Mlp,
    normalizer: Normalizer,
    window: VecDeque<f64>,
    /// Features of the previous step's window, kept so online learning
    /// can do one supervised step when the true value arrives. The
    /// buffer is recycled tick to tick; `has_features` says whether it
    /// currently holds a live feature vector.
    last_features: Vec<f64>,
    has_features: bool,
    scratch: RefCell<Buffers>,
}

impl NeuralPredictor {
    /// Creates an untrained predictor (weights are random; accuracy
    /// comes from online learning only). `scale_hint` should be near the
    /// expected maximum load.
    #[must_use]
    pub fn untrained(cfg: NeuralConfig, scale_hint: f64) -> Self {
        let mut rng = Rng64::seed_from(cfg.seed);
        let net = Mlp::new(&[cfg.window, cfg.hidden, 1], &mut rng);
        Self {
            cfg,
            net,
            normalizer: Normalizer::new(scale_hint.max(1.0)),
            window: VecDeque::with_capacity(cfg.window + 1),
            last_features: Vec::with_capacity(cfg.window),
            has_features: false,
            scratch: RefCell::new(Buffers::default()),
        }
    }

    /// Offline training phase on a collected series. Splits into
    /// training/test sets per `cfg.train_fraction`, runs training eras
    /// until the convergence criterion holds, and returns the deployable
    /// predictor plus a report.
    #[must_use]
    pub fn train(cfg: NeuralConfig, series: &[f64]) -> (Self, TrainingReport) {
        let _span = mmog_obs::span("predict/neural/train");
        let scale = series.iter().copied().fold(1.0_f64, f64::max) * 1.2;
        let mut predictor = Self::untrained(cfg, scale);
        if series.len() <= cfg.window {
            let report = TrainingReport {
                eras: 0,
                test_rmse: f64::NAN,
                train_samples: 0,
                test_samples: 0,
            };
            return (predictor, report);
        }
        // Build the (features, target) pairs as one contiguous feature
        // matrix (row `i` at `i·window`) plus a target column — the era
        // loop below then streams cache-line-friendly rows instead of
        // chasing a pointer per sample.
        let window = cfg.window;
        let n_samples = series.len() - window;
        let mut feats: Vec<f64> = Vec::with_capacity(n_samples * window);
        let mut targets: Vec<f64> = Vec::with_capacity(n_samples);
        {
            let mut bufs = predictor.scratch.borrow_mut();
            let mut row: Vec<f64> = Vec::with_capacity(window);
            for w in series.windows(window + 1) {
                compute_features(
                    &cfg,
                    &predictor.normalizer,
                    &w[..window],
                    &mut bufs.poly,
                    &mut row,
                );
                feats.extend_from_slice(&row);
                targets.push(predictor.normalizer.norm(w[window]));
            }
        }
        let split = ((n_samples as f64) * cfg.train_fraction).round() as usize;
        let split = split.clamp(1, n_samples.saturating_sub(1).max(1));
        let split = split.min(n_samples);
        let test_count = n_samples - split;
        // The test rows, gathered once into a contiguous batch: every
        // era's convergence check (and the final RMSE) then runs one
        // batched forward instead of `test_count` per-row calls. The
        // batch kernel is bit-pinned to the per-row path, and the error
        // sum below keeps its index order, so losses are unchanged.
        let mut test_feats = mlp::FeatureMatrix::with_capacity(window.max(1), test_count);
        for i in split..n_samples {
            test_feats.push_row(&feats[i * window..(i + 1) * window]);
        }
        let mut test_out = vec![0.0; test_count];

        let mut prev_loss = f64::INFINITY;
        let mut stable = 0;
        let mut eras = 0;
        // Present the training sets in a different (deterministic) order
        // each era: plain in-order SGD tracks the signal phase instead of
        // learning its shape.
        let mut order: Vec<usize> = (0..split).collect();
        let mut shuffle_rng = Rng64::seed_from(cfg.seed ^ 0x9E37_79B9);
        // One scratch serves every sample of every era — the training
        // loop performs no heap allocation.
        let bufs = predictor.scratch.get_mut();
        for era in 0..cfg.max_eras {
            eras = era + 1;
            // (1) present all training sets; (2) adjust weights.
            shuffle_rng.shuffle(&mut order);
            for &i in &order {
                predictor.net.train_step_scratch(
                    &mut bufs.mlp,
                    &feats[i * window..(i + 1) * window],
                    &[targets[i]],
                    cfg.learning_rate,
                    cfg.momentum,
                );
            }
            // (3) test the prediction capability.
            let test_loss = if test_count == 0 {
                0.0
            } else {
                predictor
                    .net
                    .forward_batch(&mut bufs.mlp, &test_feats, &mut test_out);
                let mut sum = 0.0;
                for (o, t) in test_out.iter().zip(&targets[split..]) {
                    sum += (o - t) * (o - t);
                }
                sum / test_count as f64
            };
            let improvement = (prev_loss - test_loss) / prev_loss.max(1e-12);
            if improvement.abs() < cfg.convergence_tol {
                stable += 1;
                if stable >= 3 {
                    break;
                }
            } else {
                stable = 0;
            }
            prev_loss = test_loss;
        }
        let test_rmse = if test_count == 0 {
            0.0
        } else {
            predictor
                .net
                .forward_batch(&mut bufs.mlp, &test_feats, &mut test_out);
            let mut sum = 0.0;
            for (o, t) in test_out.iter().zip(&targets[split..]) {
                sum += (o - t) * (o - t);
            }
            (sum / test_count as f64).sqrt()
        };
        // Era totals are data/seed-determined and the add is commutative,
        // so this stays deterministic under parallel per-group training.
        mmog_obs::counter("predict.train.eras", mmog_obs::Domain::Semantic).add(eras as u64);
        mmog_obs::counter("predict.train.models", mmog_obs::Domain::Semantic).incr();
        let report = TrainingReport {
            eras,
            test_rmse,
            train_samples: split,
            test_samples: test_count,
        };
        (predictor, report)
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &NeuralConfig {
        &self.cfg
    }
}

/// Free-function feature builder (smoothing + normalisation + centring
/// into `[-1, 1]`) writing into a reusable buffer; a free function so
/// callers can split-borrow predictor fields.
fn compute_features(
    cfg: &NeuralConfig,
    normalizer: &Normalizer,
    window: &[f64],
    poly: &mut PolyScratch,
    out: &mut Vec<f64>,
) {
    poly_smooth_into(window, cfg.poly_degree, poly, out);
    for x in out.iter_mut() {
        *x = 2.0 * normalizer.norm(*x) - 1.0;
    }
}

impl Predictor for NeuralPredictor {
    fn name(&self) -> &str {
        "Neural"
    }

    fn observe(&mut self, value: f64) {
        // Online learning: the arriving value is the ground truth for
        // the forecast computed from `last_features`.
        if self.cfg.online_learning {
            if self.has_features {
                self.has_features = false;
                let target = self.normalizer.norm_mut(value);
                let bufs = self.scratch.get_mut();
                self.net.train_step_scratch(
                    &mut bufs.mlp,
                    &self.last_features,
                    &[target],
                    self.cfg.learning_rate,
                    self.cfg.momentum,
                );
            }
        } else {
            // Still adapt the scale so predictions stay in range.
            let _ = self.normalizer.norm_mut(value);
        }
        self.window.push_back(value);
        if self.window.len() > self.cfg.window {
            self.window.pop_front();
        }
        if self.window.len() == self.cfg.window {
            // The deque is read in place (`make_contiguous` preserves
            // order) and the feature vector recycles its buffer — the
            // per-tick observe path performs no steady-state allocation.
            let bufs = self.scratch.get_mut();
            let w: &[f64] = self.window.make_contiguous();
            compute_features(
                &self.cfg,
                &self.normalizer,
                w,
                &mut bufs.poly,
                &mut self.last_features,
            );
            self.has_features = true;
        }
    }

    fn predict(&self) -> f64 {
        if self.window.len() < self.cfg.window {
            // Cold start: fall back to polynomial extrapolation of what
            // little history exists (or zero with none at all).
            let w: Vec<f64> = self.window.iter().copied().collect();
            return match poly_extrapolate(&w, 1) {
                Some(v) if v.is_finite() => v.max(0.0),
                _ => self.window.back().copied().unwrap_or(0.0),
            };
        }
        assert!(self.has_features, "window full implies features");
        let mut bufs = self.scratch.borrow_mut();
        let out = self.net.forward_scratch(&self.last_features, &mut bufs.mlp)[0];
        self.normalizer.denorm(out).max(0.0)
    }

    fn reset(&mut self) {
        self.window.clear();
        self.has_features = false;
    }

    fn observe_predict(&mut self, value: f64) -> f64 {
        self.observe(value);
        if self.window.len() < self.cfg.window {
            return self.predict(); // cold start: rare, keep it simple
        }
        assert!(self.has_features, "window full implies features");
        // Same arithmetic as `predict`, but through the exclusive
        // borrow `observe` already holds a right to — no RefCell
        // bookkeeping on the per-tick hot path.
        let bufs = self.scratch.get_mut();
        let out = self.net.forward_scratch(&self.last_features, &mut bufs.mlp)[0];
        self.normalizer.denorm(out).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::LastValue;
    use crate::traits::predictions_for;

    /// A noisy diurnal-like signal for training tests.
    fn diurnal_series(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng64::seed_from(seed);
        (0..n)
            .map(|i| {
                let base = 500.0 + 400.0 * (i as f64 * 2.0 * std::f64::consts::PI / 720.0).sin();
                (base + 15.0 * rng.normal()).max(0.0)
            })
            .collect()
    }

    #[test]
    fn training_converges_and_reports() {
        let series = diurnal_series(1500, 1);
        let (_p, report) = NeuralPredictor::train(NeuralConfig::default(), &series);
        assert!(report.eras > 0);
        assert!(report.eras <= NeuralConfig::default().max_eras);
        assert!(report.test_rmse < 0.1, "test rmse {}", report.test_rmse);
        assert!(report.train_samples > report.test_samples);
    }

    #[test]
    fn trained_predictor_beats_cold_one() {
        let series = diurnal_series(2000, 2);
        let (train, eval) = series.split_at(1500);
        let (mut trained, _) = NeuralPredictor::train(NeuralConfig::default(), train);
        let mut cold = NeuralPredictor::untrained(NeuralConfig::default(), 1000.0);
        let err = |p: &mut NeuralPredictor| -> f64 {
            p.reset();
            let preds = predictions_for(p, eval);
            preds
                .iter()
                .zip(eval)
                .skip(10)
                .map(|(pred, actual)| (pred - actual).abs())
                .sum::<f64>()
        };
        let e_trained = err(&mut trained);
        let e_cold = err(&mut cold);
        assert!(
            e_trained < e_cold,
            "trained {e_trained} should beat cold {e_cold}"
        );
    }

    #[test]
    fn observe_predict_is_bitwise_split_equivalent() {
        // The fused hot-path entry point must be indistinguishable from
        // observe-then-predict, across cold start, window fill, and
        // online learning — byte-determinism of reports depends on it.
        let series = diurnal_series(400, 7);
        let (train, eval) = series.split_at(300);
        let (trained, _) = NeuralPredictor::train(NeuralConfig::default(), train);
        let mut fused = trained.clone();
        let mut split = trained;
        for &x in eval {
            let f = fused.observe_predict(x);
            split.observe(x);
            let s = split.predict();
            assert_eq!(f.to_bits(), s.to_bits(), "fused {f} vs split {s}");
        }
    }

    #[test]
    fn beats_last_value_on_smooth_signal() {
        // On a smooth periodic signal the network should out-predict the
        // persistence forecast — the Figure 5 headline claim.
        let series = diurnal_series(2500, 3);
        let (train, eval) = series.split_at(2000);
        let (mut neural, _) = NeuralPredictor::train(NeuralConfig::default(), train);
        let mut last = LastValue::new();
        // Warm both on the tail of training data.
        for &x in &train[train.len() - 50..] {
            neural.observe(x);
            last.observe(x);
        }
        let abs_err = |preds: &[f64]| -> f64 {
            preds
                .iter()
                .zip(eval)
                .map(|(p, a)| (p - a).abs())
                .sum::<f64>()
        };
        let e_n = abs_err(&predictions_for(&mut neural, eval));
        let e_l = abs_err(&predictions_for(&mut last, eval));
        assert!(e_n < e_l * 1.05, "neural {e_n} vs last-value {e_l}");
    }

    #[test]
    fn cold_start_uses_extrapolation() {
        let mut p = NeuralPredictor::untrained(NeuralConfig::default(), 100.0);
        assert_eq!(p.predict(), 0.0);
        p.observe(10.0);
        p.observe(20.0);
        // Linear extrapolation of [10, 20] → 30.
        assert!((p.predict() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn predictions_never_negative() {
        let mut p = NeuralPredictor::untrained(NeuralConfig::default(), 10.0);
        for x in [5.0, 1.0, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0] {
            p.observe(x);
        }
        assert!(p.predict() >= 0.0);
    }

    #[test]
    fn reset_clears_history_keeps_weights() {
        let series = diurnal_series(1200, 5);
        let (mut p, _) = NeuralPredictor::train(NeuralConfig::default(), &series);
        for &x in &series[..20] {
            p.observe(x);
        }
        p.reset();
        assert_eq!(p.predict(), 0.0); // no history
                                      // Weights survived: after re-warming predictions are close again.
        for &x in &series[..20] {
            p.observe(x);
        }
        let pred = p.predict();
        assert!(
            (pred - series[20]).abs() < 200.0,
            "pred {pred} vs {}",
            series[20]
        );
    }

    #[test]
    fn short_series_training_is_graceful() {
        let (p, report) = NeuralPredictor::train(NeuralConfig::default(), &[1.0, 2.0, 3.0]);
        assert_eq!(report.train_samples, 0);
        assert!(report.test_rmse.is_nan());
        assert_eq!(p.config().window, 6);
    }

    #[test]
    fn deterministic_training() {
        let series = diurnal_series(1000, 7);
        let (a, ra) = NeuralPredictor::train(NeuralConfig::default(), &series);
        let (b, rb) = NeuralPredictor::train(NeuralConfig::default(), &series);
        assert_eq!(ra.eras, rb.eras);
        assert_eq!(ra.test_rmse, rb.test_rmse);
        let mut a = a;
        let mut b = b;
        for &x in &series[..10] {
            a.observe(x);
            b.observe(x);
        }
        assert_eq!(a.predict(), b.predict());
    }

    #[test]
    fn online_learning_adapts_to_regime_change() {
        let cfg = NeuralConfig {
            online_learning: true,
            ..NeuralConfig::default()
        };
        let mut p = NeuralPredictor::untrained(cfg, 100.0);
        // Feed a constant regime long enough for online SGD to latch on.
        for _ in 0..300 {
            p.observe(50.0);
        }
        let pred = p.predict();
        assert!((pred - 50.0).abs() < 10.0, "pred {pred} after constant 50s");
    }
}
