//! Per-sub-zone prediction banks.
//!
//! Sec. IV-B: "The game world is partitioned into sub-zones… The
//! predictor uses as input the entity count for each sub-zone at
//! equidistant past time intervals (steps), and delivers as output the
//! entity counts at the next time step. The predicted entity count for
//! the entire game world is the sum of all the sub-zone predictions."
//!
//! [`SubZoneBank`] holds one independent predictor per sub-zone and
//! exposes both the per-zone forecast map (what the load model needs to
//! weigh interactions) and the world aggregate.

use crate::traits::Predictor;

/// One predictor per sub-zone.
pub struct SubZoneBank {
    predictors: Vec<Box<dyn Predictor + Send>>,
}

impl SubZoneBank {
    /// Creates a bank of `zones` predictors from a factory.
    #[must_use]
    pub fn new<F>(zones: usize, make: F) -> Self
    where
        F: Fn(usize) -> Box<dyn Predictor + Send>,
    {
        Self {
            predictors: (0..zones).map(make).collect(),
        }
    }

    /// Number of sub-zones.
    #[must_use]
    pub fn zones(&self) -> usize {
        self.predictors.len()
    }

    /// Feeds the entity-count map of the current step.
    ///
    /// # Panics
    /// Panics if `counts.len()` differs from the bank size.
    pub fn observe(&mut self, counts: &[f64]) {
        assert_eq!(
            counts.len(),
            self.predictors.len(),
            "count map size mismatch"
        );
        for (p, &c) in self.predictors.iter_mut().zip(counts) {
            p.observe(c);
        }
    }

    /// Convenience for integer count maps.
    pub fn observe_u32(&mut self, counts: &[u32]) {
        assert_eq!(
            counts.len(),
            self.predictors.len(),
            "count map size mismatch"
        );
        for (p, &c) in self.predictors.iter_mut().zip(counts) {
            p.observe(f64::from(c));
        }
    }

    /// Per-sub-zone forecasts for the next step, clamped non-negative.
    #[must_use]
    pub fn predict_map(&self) -> Vec<f64> {
        self.predictors
            .iter()
            .map(|p| p.predict().max(0.0))
            .collect()
    }

    /// The whole-world forecast: sum of the sub-zone predictions.
    #[must_use]
    pub fn predict_total(&self) -> f64 {
        self.predictors.iter().map(|p| p.predict().max(0.0)).sum()
    }

    /// Resets every predictor's history.
    pub fn reset(&mut self) {
        for p in &mut self.predictors {
            p.reset();
        }
    }
}

impl std::fmt::Debug for SubZoneBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubZoneBank")
            .field("zones", &self.predictors.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::LastValue;

    fn last_value_bank(zones: usize) -> SubZoneBank {
        SubZoneBank::new(zones, |_| Box::new(LastValue::new()))
    }

    #[test]
    fn total_is_sum_of_zones() {
        let mut bank = last_value_bank(4);
        bank.observe(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(bank.predict_map(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(bank.predict_total(), 10.0);
    }

    #[test]
    fn observe_u32_matches_f64() {
        let mut a = last_value_bank(3);
        let mut b = last_value_bank(3);
        a.observe(&[5.0, 6.0, 7.0]);
        b.observe_u32(&[5, 6, 7]);
        assert_eq!(a.predict_map(), b.predict_map());
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_panics() {
        let mut bank = last_value_bank(3);
        bank.observe(&[1.0, 2.0]);
    }

    #[test]
    fn reset_clears_all_zones() {
        let mut bank = last_value_bank(2);
        bank.observe(&[9.0, 9.0]);
        bank.reset();
        assert_eq!(bank.predict_total(), 0.0);
    }

    #[test]
    fn negative_forecasts_clamped() {
        struct AlwaysNegative;
        impl Predictor for AlwaysNegative {
            fn name(&self) -> &str {
                "neg"
            }
            fn observe(&mut self, _: f64) {}
            fn predict(&self) -> f64 {
                -5.0
            }
            fn reset(&mut self) {}
        }
        let bank = SubZoneBank::new(2, |_| Box::new(AlwaysNegative) as _);
        assert_eq!(bank.predict_total(), 0.0);
        assert_eq!(bank.predict_map(), vec![0.0, 0.0]);
    }

    #[test]
    fn zones_reported() {
        assert_eq!(last_value_bank(16).zones(), 16);
        assert_eq!(last_value_bank(0).zones(), 0);
        assert_eq!(last_value_bank(0).predict_total(), 0.0);
    }
}
