//! Autoregressive AR(p) prediction via Yule–Walker / Levinson–Durbin.
//!
//! Sec. IV-A dismisses the ARMA family as "more time consuming and
//! resource intensive, thus being ill suited for MMOGs". We implement
//! the AR(p) member anyway so the claim can be tested: the fit is
//! periodic (amortised), the per-prediction cost is `O(p)`, and the
//! bake-off harness measures both accuracy and latency.

use crate::traits::Predictor;
use std::collections::VecDeque;

/// Solves the Yule–Walker equations for AR coefficients using the
/// Levinson–Durbin recursion. `autocov[k]` is the lag-`k` sample
/// autocovariance; returns `phi[1..=p]` (index 0 unused → dropped).
/// Returns `None` when the series has (near-)zero variance.
#[must_use]
pub fn levinson_durbin(autocov: &[f64], order: usize) -> Option<Vec<f64>> {
    if autocov.len() <= order || autocov[0] <= 1e-12 {
        return None;
    }
    let mut phi = vec![0.0; order + 1];
    let mut prev = vec![0.0; order + 1];
    let mut error = autocov[0];
    for k in 1..=order {
        let mut acc = autocov[k];
        for j in 1..k {
            acc -= prev[j] * autocov[k - j];
        }
        let lambda = acc / error;
        phi[k] = lambda;
        for j in 1..k {
            phi[j] = prev[j] - lambda * prev[k - j];
        }
        error *= 1.0 - lambda * lambda;
        if error <= 1e-12 {
            // Perfectly predictable — keep the coefficients found so far.
            prev[..=k].copy_from_slice(&phi[..=k]);
            break;
        }
        prev[..=k].copy_from_slice(&phi[..=k]);
    }
    Some(phi[1..].to_vec())
}

/// Sample autocovariances for lags `0..=max_lag` around the mean.
#[must_use]
pub fn autocovariance(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let n = xs.len();
    if n == 0 {
        return Vec::new();
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    (0..=max_lag.min(n - 1))
        .map(|lag| {
            (0..n - lag)
                .map(|i| (xs[i] - mean) * (xs[i + lag] - mean))
                .sum::<f64>()
                / n as f64
        })
        .collect()
}

/// An AR(p) one-step predictor refit periodically on a sliding history.
#[derive(Debug, Clone)]
pub struct ArPredictor {
    order: usize,
    refit_every: usize,
    max_history: usize,
    history: VecDeque<f64>,
    coeffs: Vec<f64>,
    mean: f64,
    since_fit: usize,
}

impl ArPredictor {
    /// Creates an AR(p) predictor that refits every `refit_every`
    /// observations over at most `max_history` retained samples.
    ///
    /// # Panics
    /// Panics if `order == 0` or `refit_every == 0` or
    /// `max_history <= order`.
    #[must_use]
    pub fn new(order: usize, refit_every: usize, max_history: usize) -> Self {
        assert!(order > 0, "order must be positive");
        assert!(refit_every > 0, "refit interval must be positive");
        assert!(max_history > order, "history must exceed the order");
        Self {
            order,
            refit_every,
            max_history,
            history: VecDeque::with_capacity(max_history),
            coeffs: Vec::new(),
            mean: 0.0,
            since_fit: 0,
        }
    }

    /// Paper-scale default: AR(6) refit every 64 samples on a one-day
    /// history window.
    #[must_use]
    pub fn default_paper() -> Self {
        Self::new(6, 64, 720)
    }

    fn refit(&mut self) {
        let xs: Vec<f64> = self.history.iter().copied().collect();
        self.mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let cov = autocovariance(&xs, self.order);
        if let Some(coeffs) = levinson_durbin(&cov, self.order) {
            self.coeffs = coeffs;
        }
    }
}

impl Predictor for ArPredictor {
    fn name(&self) -> &str {
        "AR(p)"
    }

    fn observe(&mut self, value: f64) {
        self.history.push_back(value);
        if self.history.len() > self.max_history {
            self.history.pop_front();
        }
        self.since_fit += 1;
        if self.history.len() > self.order * 4 && self.since_fit >= self.refit_every {
            self.refit();
            self.since_fit = 0;
        }
    }

    fn predict(&self) -> f64 {
        if self.coeffs.is_empty() {
            // Not fitted yet: persistence fallback.
            return self.history.back().copied().unwrap_or(0.0);
        }
        let mut acc = self.mean;
        for (i, phi) in self.coeffs.iter().enumerate() {
            let lagged = match self.history.len().checked_sub(i + 1) {
                Some(idx) => self.history[idx],
                None => self.mean,
            };
            acc += phi * (lagged - self.mean);
        }
        acc
    }

    fn reset(&mut self) {
        self.history.clear();
        self.coeffs.clear();
        self.mean = 0.0;
        self.since_fit = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmog_util::rng::Rng64;

    #[test]
    fn levinson_recovers_ar1_coefficient() {
        // Simulate AR(1) with phi = 0.8.
        let mut rng = Rng64::seed_from(1);
        let mut xs = vec![0.0];
        for _ in 0..20_000 {
            let prev = *xs.last().unwrap();
            xs.push(0.8 * prev + rng.normal());
        }
        let cov = autocovariance(&xs, 1);
        let phi = levinson_durbin(&cov, 1).unwrap();
        assert!((phi[0] - 0.8).abs() < 0.03, "phi {}", phi[0]);
    }

    #[test]
    fn levinson_recovers_ar2_coefficients() {
        let (p1, p2) = (0.6, -0.3);
        let mut rng = Rng64::seed_from(2);
        let mut xs = vec![0.0, 0.0];
        for _ in 0..30_000 {
            let n = xs.len();
            xs.push(p1 * xs[n - 1] + p2 * xs[n - 2] + rng.normal());
        }
        let cov = autocovariance(&xs, 2);
        let phi = levinson_durbin(&cov, 2).unwrap();
        assert!((phi[0] - p1).abs() < 0.03, "phi1 {}", phi[0]);
        assert!((phi[1] - p2).abs() < 0.03, "phi2 {}", phi[1]);
    }

    #[test]
    fn degenerate_series_yields_none() {
        let cov = autocovariance(&[5.0; 100], 3);
        assert!(levinson_durbin(&cov, 3).is_none());
        assert!(levinson_durbin(&[], 1).is_none());
    }

    #[test]
    fn autocovariance_lag0_is_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let cov = autocovariance(&xs, 0);
        assert!((cov[0] - 1.25).abs() < 1e-12);
        assert!(autocovariance(&[], 3).is_empty());
    }

    #[test]
    fn predictor_tracks_ar_process_better_than_mean() {
        let mut rng = Rng64::seed_from(3);
        let mut xs = vec![100.0];
        for _ in 0..3000 {
            let prev = *xs.last().unwrap();
            xs.push(100.0 + 0.9 * (prev - 100.0) + rng.normal() * 2.0);
        }
        let mut ar = ArPredictor::new(2, 50, 1000);
        let mut err_ar = 0.0;
        let mut err_mean = 0.0;
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        for &x in &xs {
            let p = ar.predict();
            if ar.name() == "AR(p)" && !p.is_nan() {
                err_ar += (p - x).abs();
                err_mean += (mean - x).abs();
            }
            ar.observe(x);
        }
        assert!(err_ar < err_mean, "AR {err_ar} vs mean {err_mean}");
    }

    #[test]
    fn unfitted_predictor_falls_back_to_last_value() {
        let mut ar = ArPredictor::new(3, 1000, 2000);
        assert_eq!(ar.predict(), 0.0);
        ar.observe(42.0);
        assert_eq!(ar.predict(), 42.0);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut ar = ArPredictor::default_paper();
        for i in 0..500 {
            ar.observe(f64::from(i % 100));
        }
        ar.reset();
        assert_eq!(ar.predict(), 0.0);
    }

    #[test]
    #[should_panic(expected = "order must be positive")]
    fn zero_order_rejected() {
        let _ = ArPredictor::new(0, 10, 100);
    }

    #[test]
    #[should_panic(expected = "history must exceed")]
    fn tiny_history_rejected() {
        let _ = ArPredictor::new(5, 10, 5);
    }
}
