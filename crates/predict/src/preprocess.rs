//! Signal preprocessing for the neural predictor.
//!
//! Sec. IV-C: "The signal preprocessors are based on several polynomial
//! functions which have the purpose of removing the unwanted noise from
//! the processed signal." We implement least-squares polynomial window
//! smoothing (fit a low-degree polynomial to the input window, feed the
//! fitted values to the network) plus the running normalisation the
//! network needs to keep its inputs in a trainable range.

/// Solves the dense linear system `A·x = b` with Gaussian elimination
/// and partial pivoting. Returns `None` for (near-)singular systems.
/// Sized for the tiny normal-equation systems of polynomial fitting.
#[must_use]
pub fn solve_linear(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    debug_assert!(a.len() == n && a.iter().all(|row| row.len() == n));
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite matrix")
            })
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            // Split so the pivot row (index `col` < `row`) and the row
            // being eliminated can be borrowed simultaneously.
            let (head, tail) = a.split_at_mut(row);
            let (pivot_row, cur) = (&head[col], &mut tail[0]);
            let factor = cur[col] / pivot_row[col];
            for (x, &p) in cur[col..n].iter_mut().zip(&pivot_row[col..n]) {
                *x -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back-substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Fits a polynomial of the given degree to `ys` (x = 0, 1, 2, …) by
/// least squares, returning the coefficients `c0 + c1·x + …`. Degrees
/// larger than `ys.len() - 1` are clamped. Returns `None` for empty
/// input or a singular fit.
#[must_use]
pub fn polyfit(ys: &[f64], degree: usize) -> Option<Vec<f64>> {
    if ys.is_empty() {
        return None;
    }
    let degree = degree.min(ys.len() - 1);
    let m = degree + 1;
    // Normal equations: (Xᵀ X) c = Xᵀ y with Vandermonde X.
    let mut xtx = vec![vec![0.0; m]; m];
    let mut xty = vec![0.0; m];
    for (i, &y) in ys.iter().enumerate() {
        let x = i as f64;
        let mut powers = vec![1.0; m];
        for p in 1..m {
            powers[p] = powers[p - 1] * x;
        }
        for r in 0..m {
            xty[r] += powers[r] * y;
            for c in 0..m {
                xtx[r][c] += powers[r] * powers[c];
            }
        }
    }
    solve_linear(xtx, xty)
}

/// Evaluates a polynomial (coefficients low-to-high) at `x`.
#[must_use]
pub fn polyval(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

/// Replaces a window with its polynomial least-squares fit — the
/// paper's noise-removal preprocessor. Degenerate fits fall back to the
/// raw window.
#[must_use]
pub fn poly_smooth(window: &[f64], degree: usize) -> Vec<f64> {
    match polyfit(window, degree) {
        Some(coeffs) => (0..window.len())
            .map(|i| polyval(&coeffs, i as f64))
            .collect(),
        None => window.to_vec(),
    }
}

/// Extrapolates the polynomial fit one step past the window — a cheap
/// stand-alone forecast (also used as the neural predictor's fallback
/// before the input window fills).
#[must_use]
pub fn poly_extrapolate(window: &[f64], degree: usize) -> Option<f64> {
    polyfit(window, degree).map(|coeffs| polyval(&coeffs, window.len() as f64))
}

/// Running max-based normaliser mapping loads into `[0, 1]`-ish range.
#[derive(Debug, Clone)]
pub struct Normalizer {
    scale: f64,
}

impl Normalizer {
    /// Creates a normaliser with an initial scale (use the training-set
    /// maximum with some headroom).
    ///
    /// # Panics
    /// Panics if `scale` is not positive.
    #[must_use]
    pub fn new(scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        Self { scale }
    }

    /// Current scale.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Normalises a value; values beyond the scale grow it so the
    /// network never sees wildly out-of-range inputs.
    pub fn norm_mut(&mut self, x: f64) -> f64 {
        if x > self.scale {
            self.scale = x * 1.2;
        }
        x / self.scale
    }

    /// Normalises without adapting (for read-only paths).
    #[must_use]
    pub fn norm(&self, x: f64) -> f64 {
        x / self.scale
    }

    /// Maps a normalised value back to load units.
    #[must_use]
    pub fn denorm(&self, y: f64) -> f64 {
        y * self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_system() {
        // 2x + y = 5; x - y = 1 → x = 2, y = 1.
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let x = solve_linear(a, vec![5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_system_is_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn polyfit_recovers_exact_quadratic() {
        // y = 3 + 2x + x².
        let ys: Vec<f64> = (0..6)
            .map(|i| 3.0 + 2.0 * i as f64 + (i * i) as f64)
            .collect();
        let c = polyfit(&ys, 2).unwrap();
        assert!((c[0] - 3.0).abs() < 1e-8);
        assert!((c[1] - 2.0).abs() < 1e-8);
        assert!((c[2] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn polyfit_degree_clamped() {
        let c = polyfit(&[1.0, 2.0], 5).unwrap();
        assert_eq!(c.len(), 2); // clamped to linear
        assert!(polyfit(&[], 2).is_none());
    }

    #[test]
    fn polyval_constant_and_linear() {
        assert_eq!(polyval(&[7.0], 100.0), 7.0);
        assert_eq!(polyval(&[1.0, 2.0], 3.0), 7.0);
        assert_eq!(polyval(&[], 3.0), 0.0);
    }

    #[test]
    fn smoothing_removes_noise_keeps_trend() {
        // Linear trend plus alternating noise.
        let window: Vec<f64> = (0..8)
            .map(|i| 10.0 * i as f64 + if i % 2 == 0 { 3.0 } else { -3.0 })
            .collect();
        let smooth = poly_smooth(&window, 1);
        // The fit should be closer to the clean trend than the input.
        let clean: Vec<f64> = (0..8).map(|i| 10.0 * i as f64).collect();
        let err = |xs: &[f64]| -> f64 { xs.iter().zip(&clean).map(|(a, b)| (a - b).abs()).sum() };
        assert!(err(&smooth) < err(&window) / 2.0);
    }

    #[test]
    fn smoothing_preserves_polynomial_signals() {
        let window: Vec<f64> = (0..6).map(|i| (i * i) as f64).collect();
        let smooth = poly_smooth(&window, 2);
        for (a, b) in smooth.iter().zip(&window) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn extrapolation_continues_trend() {
        let window = [0.0, 2.0, 4.0, 6.0];
        let next = poly_extrapolate(&window, 1).unwrap();
        assert!((next - 8.0).abs() < 1e-9);
        assert!(poly_extrapolate(&[], 1).is_none());
    }

    #[test]
    fn normalizer_round_trip_and_adaptation() {
        let mut n = Normalizer::new(100.0);
        assert_eq!(n.norm(50.0), 0.5);
        assert_eq!(n.denorm(0.5), 50.0);
        // Out-of-range value grows the scale.
        let y = n.norm_mut(200.0);
        assert!(y <= 1.0);
        assert!(n.scale() >= 200.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn normalizer_rejects_zero_scale() {
        let _ = Normalizer::new(0.0);
    }
}
