//! Signal preprocessing for the neural predictor.
//!
//! Sec. IV-C: "The signal preprocessors are based on several polynomial
//! functions which have the purpose of removing the unwanted noise from
//! the processed signal." We implement least-squares polynomial window
//! smoothing (fit a low-degree polynomial to the input window, feed the
//! fitted values to the network) plus the running normalisation the
//! network needs to keep its inputs in a trainable range.

/// Solves the dense linear system `A·x = b` with Gaussian elimination
/// and partial pivoting. Returns `None` for (near-)singular systems.
/// Sized for the tiny normal-equation systems of polynomial fitting.
#[must_use]
pub fn solve_linear(a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    debug_assert!(a.len() == n && a.iter().all(|row| row.len() == n));
    let mut flat = Vec::with_capacity(n * n);
    for row in &a {
        flat.extend_from_slice(row);
    }
    let mut x = vec![0.0; n];
    if solve_linear_flat(&mut flat, &mut b, &mut x) {
        Some(x)
    } else {
        None
    }
}

/// In-place core of [`solve_linear`] on a row-major `n×n` matrix: the
/// elimination runs inside the caller's buffers (the matrix and
/// right-hand side are destroyed, the solution lands in `x`), so
/// per-call fitting allocates nothing. The pivoting and elimination
/// order are exactly [`solve_linear`]'s, so results are bit-identical.
/// Returns `false` for (near-)singular systems.
pub fn solve_linear_flat(a: &mut [f64], b: &mut [f64], x: &mut [f64]) -> bool {
    let n = b.len();
    debug_assert!(a.len() == n * n && x.len() == n);
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i * n + col]
                    .abs()
                    .partial_cmp(&a[j * n + col].abs())
                    .expect("finite matrix")
            })
            .expect("non-empty range");
        if a[pivot * n + col].abs() < 1e-12 {
            return false;
        }
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
        }
        b.swap(col, pivot);
        for row in col + 1..n {
            // Split so the pivot row (index `col` < `row`) and the row
            // being eliminated can be borrowed simultaneously.
            let (head, tail) = a.split_at_mut(row * n);
            let pivot_row = &head[col * n..col * n + n];
            let cur = &mut tail[..n];
            let factor = cur[col] / pivot_row[col];
            for (x, &p) in cur[col..n].iter_mut().zip(&pivot_row[col..n]) {
                *x -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back-substitution.
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    true
}

/// Reusable buffers for allocation-free polynomial fitting: the normal
/// equations, the power row, and the solved coefficients all live here
/// and are recycled call to call.
#[derive(Debug, Clone, Default)]
pub struct PolyScratch {
    /// Row-major `m×m` normal-equation matrix `XᵀX`.
    xtx: Vec<f64>,
    /// Right-hand side `Xᵀy`.
    xty: Vec<f64>,
    /// Per-sample powers `x⁰ … x^degree`.
    powers: Vec<f64>,
    /// Solved coefficients (low-to-high).
    coeffs: Vec<f64>,
}

/// Fits a polynomial of the given degree to `ys` (x = 0, 1, 2, …) by
/// least squares, returning the coefficients `c0 + c1·x + …`. Degrees
/// larger than `ys.len() - 1` are clamped. Returns `None` for empty
/// input or a singular fit.
#[must_use]
pub fn polyfit(ys: &[f64], degree: usize) -> Option<Vec<f64>> {
    if ys.is_empty() {
        return None;
    }
    let degree = degree.min(ys.len() - 1);
    let m = degree + 1;
    // Normal equations: (Xᵀ X) c = Xᵀ y with Vandermonde X.
    let mut xtx = vec![vec![0.0; m]; m];
    let mut xty = vec![0.0; m];
    for (i, &y) in ys.iter().enumerate() {
        let x = i as f64;
        let mut powers = vec![1.0; m];
        for p in 1..m {
            powers[p] = powers[p - 1] * x;
        }
        for r in 0..m {
            xty[r] += powers[r] * y;
            for c in 0..m {
                xtx[r][c] += powers[r] * powers[c];
            }
        }
    }
    solve_linear(xtx, xty)
}

/// Allocation-free [`polyfit`]: the normal equations are assembled and
/// solved inside `scratch` (identical accumulation and elimination
/// order, so the coefficients are bit-identical). Returns the
/// coefficient slice, or `None` for empty input or a singular fit.
pub fn polyfit_scratch<'s>(
    ys: &[f64],
    degree: usize,
    scratch: &'s mut PolyScratch,
) -> Option<&'s [f64]> {
    if ys.is_empty() {
        return None;
    }
    let degree = degree.min(ys.len() - 1);
    let m = degree + 1;
    // Normal equations: (Xᵀ X) c = Xᵀ y with Vandermonde X.
    scratch.xtx.clear();
    scratch.xtx.resize(m * m, 0.0);
    scratch.xty.clear();
    scratch.xty.resize(m, 0.0);
    scratch.powers.clear();
    scratch.powers.resize(m, 1.0);
    for (i, &y) in ys.iter().enumerate() {
        let x = i as f64;
        scratch.powers[0] = 1.0;
        for p in 1..m {
            scratch.powers[p] = scratch.powers[p - 1] * x;
        }
        for r in 0..m {
            scratch.xty[r] += scratch.powers[r] * y;
            for c in 0..m {
                scratch.xtx[r * m + c] += scratch.powers[r] * scratch.powers[c];
            }
        }
    }
    scratch.coeffs.clear();
    scratch.coeffs.resize(m, 0.0);
    if solve_linear_flat(&mut scratch.xtx, &mut scratch.xty, &mut scratch.coeffs) {
        Some(&scratch.coeffs)
    } else {
        None
    }
}

/// Evaluates a polynomial (coefficients low-to-high) at `x`.
#[must_use]
pub fn polyval(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

/// Replaces a window with its polynomial least-squares fit — the
/// paper's noise-removal preprocessor. Degenerate fits fall back to the
/// raw window.
#[must_use]
pub fn poly_smooth(window: &[f64], degree: usize) -> Vec<f64> {
    let mut scratch = PolyScratch::default();
    let mut out = Vec::with_capacity(window.len());
    poly_smooth_into(window, degree, &mut scratch, &mut out);
    out
}

/// Allocation-free [`poly_smooth`]: the fit runs inside `scratch` and
/// the smoothed window replaces the contents of `out` (identical
/// values — fit and evaluation order are unchanged).
pub fn poly_smooth_into(
    window: &[f64],
    degree: usize,
    scratch: &mut PolyScratch,
    out: &mut Vec<f64>,
) {
    out.clear();
    match polyfit_scratch(window, degree, scratch) {
        Some(coeffs) => out.extend((0..window.len()).map(|i| polyval(coeffs, i as f64))),
        None => out.extend_from_slice(window),
    }
}

/// Extrapolates the polynomial fit one step past the window — a cheap
/// stand-alone forecast (also used as the neural predictor's fallback
/// before the input window fills).
#[must_use]
pub fn poly_extrapolate(window: &[f64], degree: usize) -> Option<f64> {
    polyfit(window, degree).map(|coeffs| polyval(&coeffs, window.len() as f64))
}

/// Running max-based normaliser mapping loads into `[0, 1]`-ish range.
#[derive(Debug, Clone)]
pub struct Normalizer {
    scale: f64,
}

impl Normalizer {
    /// Creates a normaliser with an initial scale (use the training-set
    /// maximum with some headroom).
    ///
    /// # Panics
    /// Panics if `scale` is not positive.
    #[must_use]
    pub fn new(scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        Self { scale }
    }

    /// Current scale.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Normalises a value; values beyond the scale grow it so the
    /// network never sees wildly out-of-range inputs.
    pub fn norm_mut(&mut self, x: f64) -> f64 {
        if x > self.scale {
            self.scale = x * 1.2;
        }
        x / self.scale
    }

    /// Normalises without adapting (for read-only paths).
    #[must_use]
    pub fn norm(&self, x: f64) -> f64 {
        x / self.scale
    }

    /// Maps a normalised value back to load units.
    #[must_use]
    pub fn denorm(&self, y: f64) -> f64 {
        y * self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_system() {
        // 2x + y = 5; x - y = 1 → x = 2, y = 1.
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let x = solve_linear(a, vec![5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_system_is_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn polyfit_recovers_exact_quadratic() {
        // y = 3 + 2x + x².
        let ys: Vec<f64> = (0..6)
            .map(|i| 3.0 + 2.0 * i as f64 + (i * i) as f64)
            .collect();
        let c = polyfit(&ys, 2).unwrap();
        assert!((c[0] - 3.0).abs() < 1e-8);
        assert!((c[1] - 2.0).abs() < 1e-8);
        assert!((c[2] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn polyfit_degree_clamped() {
        let c = polyfit(&[1.0, 2.0], 5).unwrap();
        assert_eq!(c.len(), 2); // clamped to linear
        assert!(polyfit(&[], 2).is_none());
    }

    #[test]
    fn polyval_constant_and_linear() {
        assert_eq!(polyval(&[7.0], 100.0), 7.0);
        assert_eq!(polyval(&[1.0, 2.0], 3.0), 7.0);
        assert_eq!(polyval(&[], 3.0), 0.0);
    }

    #[test]
    fn smoothing_removes_noise_keeps_trend() {
        // Linear trend plus alternating noise.
        let window: Vec<f64> = (0..8)
            .map(|i| 10.0 * i as f64 + if i % 2 == 0 { 3.0 } else { -3.0 })
            .collect();
        let smooth = poly_smooth(&window, 1);
        // The fit should be closer to the clean trend than the input.
        let clean: Vec<f64> = (0..8).map(|i| 10.0 * i as f64).collect();
        let err = |xs: &[f64]| -> f64 { xs.iter().zip(&clean).map(|(a, b)| (a - b).abs()).sum() };
        assert!(err(&smooth) < err(&window) / 2.0);
    }

    #[test]
    fn smoothing_preserves_polynomial_signals() {
        let window: Vec<f64> = (0..6).map(|i| (i * i) as f64).collect();
        let smooth = poly_smooth(&window, 2);
        for (a, b) in smooth.iter().zip(&window) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn scratch_fit_matches_allocating_fit() {
        let mut scratch = PolyScratch::default();
        let window: Vec<f64> = (0..9)
            .map(|i| {
                3.0 + 1.7 * i as f64 - 0.4 * (i * i) as f64 + if i % 2 == 0 { 0.3 } else { -0.3 }
            })
            .collect();
        for degree in 0..4 {
            let a = polyfit(&window, degree).unwrap();
            let b = polyfit_scratch(&window, degree, &mut scratch).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "degree {degree}");
            }
            let mut smoothed = Vec::new();
            poly_smooth_into(&window, degree, &mut scratch, &mut smoothed);
            let reference = poly_smooth(&window, degree);
            assert_eq!(smoothed.len(), reference.len());
            for (x, y) in smoothed.iter().zip(&reference) {
                assert_eq!(x.to_bits(), y.to_bits(), "degree {degree}");
            }
        }
        // Degenerate input falls back to the raw window in both paths.
        let mut out = vec![99.0];
        poly_smooth_into(&[], 2, &mut scratch, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn extrapolation_continues_trend() {
        let window = [0.0, 2.0, 4.0, 6.0];
        let next = poly_extrapolate(&window, 1).unwrap();
        assert!((next - 8.0).abs() < 1e-9);
        assert!(poly_extrapolate(&[], 1).is_none());
    }

    #[test]
    fn normalizer_round_trip_and_adaptation() {
        let mut n = Normalizer::new(100.0);
        assert_eq!(n.norm(50.0), 0.5);
        assert_eq!(n.denorm(0.5), 50.0);
        // Out-of-range value grows the scale.
        let y = n.norm_mut(200.0);
        assert!(y <= 1.0);
        assert!(n.scale() >= 200.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn normalizer_rejects_zero_scale() {
        let _ = Normalizer::new(0.0);
    }
}
