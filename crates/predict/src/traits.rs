//! The one-step-ahead predictor interface.

/// A one-step-ahead time-series predictor.
///
/// The paper's prediction loop runs every two simulated minutes: the
/// predictor receives the newest sample via [`Predictor::observe`] and
/// supplies the forecast for the next sample via [`Predictor::predict`].
///
/// Implementations must be deterministic given the same observation
/// sequence (simulation results must be reproducible).
pub trait Predictor {
    /// Short display name ("Neural", "Last value", …).
    fn name(&self) -> &str;

    /// Feeds the newest observed sample.
    fn observe(&mut self, value: f64);

    /// Forecast of the next sample. With no history yet, implementations
    /// return 0.0 (the provisioner treats that as "no demand signal").
    fn predict(&self) -> f64;

    /// Clears all history, returning the predictor to its initial state
    /// (trained parameters, if any, are retained).
    fn reset(&mut self);

    /// Feeds the newest sample and returns the forecast for the next
    /// one, in one call. Must be exactly equivalent to `observe(value)`
    /// followed by `predict()`; the default does just that.
    /// Implementations override it to fuse the two passes (share one
    /// scratch borrow, skip a recompute) on the per-tick hot path.
    fn observe_predict(&mut self, value: f64) -> f64 {
        self.observe(value);
        self.predict()
    }
}

/// Blanket helper: run a predictor over a series, collecting the
/// prediction made *for* each sample (i.e. `out[i]` was produced before
/// `series[i]` was observed).
pub fn predictions_for<P: Predictor + ?Sized>(predictor: &mut P, series: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(series.len());
    for &x in series {
        out.push(predictor.predict());
        predictor.observe(x);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal predictor for exercising the helper.
    struct Zero;
    impl Predictor for Zero {
        fn name(&self) -> &str {
            "zero"
        }
        fn observe(&mut self, _: f64) {}
        fn predict(&self) -> f64 {
            0.0
        }
        fn reset(&mut self) {}
    }

    #[test]
    fn predictions_align_with_samples() {
        let mut p = Zero;
        let preds = predictions_for(&mut p, &[1.0, 2.0, 3.0]);
        assert_eq!(preds, vec![0.0, 0.0, 0.0]);
        assert_eq!(preds.len(), 3);
    }
}
