//! A from-scratch multi-layer perceptron.
//!
//! The paper's neural predictor "is a three layered MLP with a (6,3,1)
//! structure (input, hidden and output neuron layers)" (Sec. IV-C),
//! trained by backpropagation over "training eras … until a convergence
//! criterion is fulfilled". This module provides the network itself:
//! dense layers, tanh hidden activations, a linear output (standard for
//! regression), stochastic gradient descent with momentum, and a
//! deterministic Xavier-style initialisation from [`Rng64`].

use mmog_util::rng::Rng64;
use serde::{Deserialize, Serialize};

/// Activation applied to a layer's outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Hyperbolic tangent (hidden layers).
    Tanh,
    /// Identity (regression output layer).
    Linear,
}

impl Activation {
    #[inline]
    fn apply(self, x: f64) -> f64 {
        match self {
            Self::Tanh => x.tanh(),
            Self::Linear => x,
        }
    }

    /// Derivative expressed via the activation output `y = f(x)`.
    #[inline]
    fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Self::Tanh => 1.0 - y * y,
            Self::Linear => 1.0,
        }
    }
}

/// One dense layer: `outputs × (inputs + 1)` weights (bias folded in as
/// the last column).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Layer {
    inputs: usize,
    outputs: usize,
    activation: Activation,
    /// Row-major `[out][in+1]`.
    weights: Vec<f64>,
    /// Momentum velocity, same layout.
    velocity: Vec<f64>,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, activation: Activation, rng: &mut Rng64) -> Self {
        // Xavier/Glorot uniform initialisation.
        let bound = (6.0 / (inputs + outputs) as f64).sqrt();
        let n = outputs * (inputs + 1);
        let weights = (0..n).map(|_| rng.range_f64(-bound, bound)).collect();
        Self {
            inputs,
            outputs,
            activation,
            weights,
            velocity: vec![0.0; n],
        }
    }

    #[inline]
    fn w(&self, out: usize, input: usize) -> f64 {
        self.weights[out * (self.inputs + 1) + input]
    }

    /// Forward pass, appending activations to `out`.
    fn forward(&self, input: &[f64], out: &mut Vec<f64>) {
        debug_assert_eq!(input.len(), self.inputs);
        for o in 0..self.outputs {
            let row = &self.weights[o * (self.inputs + 1)..(o + 1) * (self.inputs + 1)];
            let mut acc = row[self.inputs]; // bias
            for (w, x) in row[..self.inputs].iter().zip(input) {
                acc += w * x;
            }
            out.push(self.activation.apply(acc));
        }
    }
}

/// A feed-forward network with tanh hidden layers and a linear output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Layer>,
}

impl Mlp {
    /// Builds a network with the given layer sizes, e.g. `&[6, 3, 1]`
    /// for the paper's structure. Hidden layers use tanh; the final
    /// layer is linear.
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given or any size is zero.
    #[must_use]
    pub fn new(shape: &[usize], rng: &mut Rng64) -> Self {
        assert!(shape.len() >= 2, "need at least input and output sizes");
        assert!(shape.iter().all(|&s| s > 0), "layer sizes must be positive");
        let layers = shape
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let activation = if i + 2 == shape.len() {
                    Activation::Linear
                } else {
                    Activation::Tanh
                };
                Layer::new(w[0], w[1], activation, rng)
            })
            .collect();
        Self { layers }
    }

    /// Number of inputs the network expects.
    #[must_use]
    pub fn input_size(&self) -> usize {
        self.layers.first().map_or(0, |l| l.inputs)
    }

    /// Number of outputs the network produces.
    #[must_use]
    pub fn output_size(&self) -> usize {
        self.layers.last().map_or(0, |l| l.outputs)
    }

    /// Forward pass.
    ///
    /// # Panics
    /// Panics in debug builds if `input.len()` mismatches the network.
    #[must_use]
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        let mut current = input.to_vec();
        let mut next = Vec::new();
        for layer in &self.layers {
            next.clear();
            layer.forward(&current, &mut next);
            std::mem::swap(&mut current, &mut next);
        }
        current
    }

    /// One stochastic-gradient step on a single (input, target) pair
    /// with momentum. Returns the pre-update squared error.
    pub fn train_step(
        &mut self,
        input: &[f64],
        target: &[f64],
        learning_rate: f64,
        momentum: f64,
    ) -> f64 {
        // Forward pass caching every layer's activations.
        let mut activations: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len() + 1);
        activations.push(input.to_vec());
        for layer in &self.layers {
            let mut out = Vec::with_capacity(layer.outputs);
            layer.forward(activations.last().expect("seeded"), &mut out);
            activations.push(out);
        }
        let output = activations.last().expect("at least input layer");
        debug_assert_eq!(output.len(), target.len());
        let loss: f64 = output
            .iter()
            .zip(target)
            .map(|(o, t)| (o - t) * (o - t))
            .sum();

        // Backward pass: delta for the output layer of MSE loss.
        let mut delta: Vec<f64> = output
            .iter()
            .zip(target)
            .zip(&activations[activations.len() - 1])
            .map(|((o, t), &y)| {
                2.0 * (o - t)
                    * self
                        .layers
                        .last()
                        .expect("non-empty")
                        .activation
                        .derivative_from_output(y)
            })
            .collect();

        for li in (0..self.layers.len()).rev() {
            let input_act = activations[li].clone();
            // Compute the delta to propagate before mutating weights.
            let prev_delta: Vec<f64> = if li > 0 {
                let layer = &self.layers[li];
                let below = &self.layers[li - 1];
                (0..layer.inputs)
                    .map(|i| {
                        let sum: f64 = (0..layer.outputs).map(|o| delta[o] * layer.w(o, i)).sum();
                        sum * below.activation.derivative_from_output(activations[li][i])
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let layer = &mut self.layers[li];
            for (o, &d) in delta.iter().enumerate().take(layer.outputs) {
                let base = o * (layer.inputs + 1);
                for (i, &act) in input_act.iter().enumerate().take(layer.inputs) {
                    let grad = d * act;
                    let v = momentum * layer.velocity[base + i] - learning_rate * grad;
                    layer.velocity[base + i] = v;
                    layer.weights[base + i] += v;
                }
                // Bias.
                let grad = d;
                let v = momentum * layer.velocity[base + layer.inputs] - learning_rate * grad;
                layer.velocity[base + layer.inputs] = v;
                layer.weights[base + layer.inputs] += v;
            }
            delta = prev_delta;
        }
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_sizes() {
        let mut rng = Rng64::seed_from(1);
        let net = Mlp::new(&[6, 3, 1], &mut rng);
        assert_eq!(net.input_size(), 6);
        assert_eq!(net.output_size(), 1);
        assert_eq!(net.forward(&[0.0; 6]).len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_single_layer() {
        let mut rng = Rng64::seed_from(1);
        let _ = Mlp::new(&[4], &mut rng);
    }

    #[test]
    fn deterministic_initialisation() {
        let mut r1 = Rng64::seed_from(7);
        let mut r2 = Rng64::seed_from(7);
        let a = Mlp::new(&[4, 3, 1], &mut r1);
        let b = Mlp::new(&[4, 3, 1], &mut r2);
        assert_eq!(
            a.forward(&[0.1, 0.2, 0.3, 0.4]),
            b.forward(&[0.1, 0.2, 0.3, 0.4])
        );
    }

    #[test]
    fn learns_linear_function() {
        // y = 0.5·x1 − 0.3·x2 + 0.1.
        let mut rng = Rng64::seed_from(3);
        let mut net = Mlp::new(&[2, 4, 1], &mut rng);
        let f = |x1: f64, x2: f64| 0.5 * x1 - 0.3 * x2 + 0.1;
        let mut data_rng = Rng64::seed_from(11);
        let samples: Vec<([f64; 2], f64)> = (0..200)
            .map(|_| {
                let x1 = data_rng.range_f64(-1.0, 1.0);
                let x2 = data_rng.range_f64(-1.0, 1.0);
                ([x1, x2], f(x1, x2))
            })
            .collect();
        for _era in 0..200 {
            for (x, y) in &samples {
                net.train_step(x, &[*y], 0.05, 0.5);
            }
        }
        let mse: f64 = samples
            .iter()
            .map(|(x, y)| {
                let o = net.forward(x)[0];
                (o - y) * (o - y)
            })
            .sum::<f64>()
            / samples.len() as f64;
        assert!(mse < 1e-3, "mse {mse}");
    }

    #[test]
    fn learns_nonlinear_function() {
        // y = x² on [−1, 1] needs the hidden tanh layer.
        let mut rng = Rng64::seed_from(5);
        let mut net = Mlp::new(&[1, 6, 1], &mut rng);
        let xs: Vec<f64> = (0..40).map(|i| -1.0 + 2.0 * i as f64 / 39.0).collect();
        for _era in 0..800 {
            for &x in &xs {
                net.train_step(&[x], &[x * x], 0.05, 0.3);
            }
        }
        let mse: f64 = xs
            .iter()
            .map(|&x| {
                let o = net.forward(&[x])[0];
                (o - x * x) * (o - x * x)
            })
            .sum::<f64>()
            / xs.len() as f64;
        assert!(mse < 5e-3, "mse {mse}");
    }

    #[test]
    fn train_step_reports_decreasing_loss() {
        let mut rng = Rng64::seed_from(9);
        let mut net = Mlp::new(&[3, 3, 1], &mut rng);
        let input = [0.2, -0.4, 0.6];
        let target = [0.5];
        let first = net.train_step(&input, &target, 0.1, 0.0);
        let mut last = first;
        for _ in 0..100 {
            last = net.train_step(&input, &target, 0.1, 0.0);
        }
        assert!(last < first * 0.01, "first {first} last {last}");
    }

    #[test]
    fn paper_structure_631_trains() {
        let mut rng = Rng64::seed_from(13);
        let mut net = Mlp::new(&[6, 3, 1], &mut rng);
        // Predict the next value of a normalised sine from 6 lags.
        let series: Vec<f64> = (0..300)
            .map(|i| 0.5 + 0.4 * (i as f64 * 0.2).sin())
            .collect();
        for _era in 0..60 {
            for w in series.windows(7) {
                net.train_step(&w[..6], &[w[6]], 0.05, 0.3);
            }
        }
        let mut worst: f64 = 0.0;
        for w in series.windows(7).take(50) {
            let pred = net.forward(&w[..6])[0];
            worst = worst.max((pred - w[6]).abs());
        }
        assert!(worst < 0.1, "worst abs error {worst}");
    }
}
