//! A from-scratch multi-layer perceptron.
//!
//! The paper's neural predictor "is a three layered MLP with a (6,3,1)
//! structure (input, hidden and output neuron layers)" (Sec. IV-C),
//! trained by backpropagation over "training eras … until a convergence
//! criterion is fulfilled". This module provides the network itself:
//! dense layers, tanh hidden activations, a linear output (standard for
//! regression), stochastic gradient descent with momentum, and a
//! deterministic Xavier-style initialisation from [`Rng64`].
//!
//! The network stores every layer's weights in one contiguous
//! row-major array (bias folded in as each row's last column) and the
//! hot fused forward+backprop pass runs entirely inside a caller-owned
//! [`Scratch`], so steady-state training performs no heap allocation.
//! The arithmetic — accumulation order, momentum update, activation
//! evaluation — is kept operation-for-operation identical to the
//! original per-layer implementation, so trained weights and every
//! downstream report are bit-identical.

use mmog_util::rng::Rng64;
use serde::{Deserialize, Serialize};

/// Activation applied to a layer's outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Hyperbolic tangent (hidden layers).
    Tanh,
    /// Identity (regression output layer).
    Linear,
}

impl Activation {
    /// Derivative expressed via the activation output `y = f(x)`.
    #[inline]
    fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Self::Tanh => 1.0 - y * y,
            Self::Linear => 1.0,
        }
    }
}

/// Dot product of one weight row (`inputs` coefficients then the bias)
/// against `input`, accumulated in the historical order: bias first,
/// then coefficient·input terms in ascending index order.
#[inline(always)]
fn dot_bias(row: &[f64], input: &[f64]) -> f64 {
    let (coef, bias) = row.split_at(input.len());
    let mut acc = bias[0];
    for (wv, x) in coef.iter().zip(input) {
        acc += wv * x;
    }
    acc
}

/// Reusable forward/backprop buffers. One `Scratch` serves any number
/// of [`Mlp::forward_scratch`] / [`Mlp::train_step_scratch`] calls (and
/// any network — buffers grow to fit on first use), so a training loop
/// allocates nothing per sample or per era.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// Every layer's activations, contiguous: the input copy first,
    /// then each layer's outputs (segment boundaries come from the
    /// network's activation offsets).
    acts: Vec<f64>,
    /// Current layer's error signal during backprop.
    delta: Vec<f64>,
    /// Error signal propagated to the layer below.
    prev_delta: Vec<f64>,
}

impl Scratch {
    /// Grows the buffers to fit `net` (no-op once sized).
    fn ensure(&mut self, net: &Mlp) {
        let act_len = *net.act_off.last().expect("offsets non-empty");
        if self.acts.len() < act_len {
            self.acts.resize(act_len, 0.0);
        }
        let width = net.shape.iter().copied().max().unwrap_or(0);
        if self.delta.len() < width {
            self.delta.resize(width, 0.0);
        }
        if self.prev_delta.len() < width {
            self.prev_delta.resize(width, 0.0);
        }
    }
}

/// A contiguous row-major batch of feature rows (one sample per row,
/// `width` features each), the input side of [`Mlp::forward_batch`].
/// Rows are pushed once and the backing storage is recycled via
/// [`clear`], so a per-tick gather loop allocates nothing steady-state.
///
/// [`clear`]: FeatureMatrix::clear
#[derive(Debug, Clone, Default)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    width: usize,
}

impl FeatureMatrix {
    /// An empty matrix whose rows are `width` features wide.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    #[must_use]
    pub fn new(width: usize) -> Self {
        Self::with_capacity(width, 0)
    }

    /// An empty matrix pre-sized for `rows` rows of `width` features.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    #[must_use]
    pub fn with_capacity(width: usize, rows: usize) -> Self {
        assert!(width > 0, "row width must be positive");
        Self {
            data: Vec::with_capacity(width * rows),
            width,
        }
    }

    /// Appends one sample row.
    ///
    /// # Panics
    /// Panics if `row.len()` differs from the matrix width.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.width, "row width mismatch");
        self.data.extend_from_slice(row);
    }

    /// Drops all rows, keeping the backing storage.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Number of rows currently stored.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.data.len() / self.width
    }

    /// Features per row.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.width..(i + 1) * self.width]
    }

    /// Iterator over the rows, in order.
    pub fn rows_iter(&self) -> std::slice::ChunksExact<'_, f64> {
        self.data.chunks_exact(self.width)
    }
}

/// A feed-forward network with tanh hidden layers and a linear output.
///
/// Weights live in one flat row-major array covering all layers; layer
/// `l` maps `shape[l]` inputs to `shape[l+1]` outputs through rows of
/// `shape[l] + 1` weights (bias last), starting at `w_off[l]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    /// Layer sizes, e.g. `[6, 3, 1]`.
    shape: Vec<usize>,
    /// All layers' weights, contiguous row-major `[out][in+1]`.
    weights: Vec<f64>,
    /// Momentum velocity, same layout.
    velocity: Vec<f64>,
    /// Start of layer `l`'s weights in `weights` (len = layers + 1).
    w_off: Vec<usize>,
    /// Start of activation segment `l` in [`Scratch::acts`]: segment 0
    /// is the input copy, segment `l + 1` layer `l`'s outputs.
    act_off: Vec<usize>,
}

impl Mlp {
    /// Builds a network with the given layer sizes, e.g. `&[6, 3, 1]`
    /// for the paper's structure. Hidden layers use tanh; the final
    /// layer is linear.
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given or any size is zero.
    #[must_use]
    pub fn new(shape: &[usize], rng: &mut Rng64) -> Self {
        assert!(shape.len() >= 2, "need at least input and output sizes");
        assert!(shape.iter().all(|&s| s > 0), "layer sizes must be positive");
        let mut weights = Vec::new();
        let mut w_off = Vec::with_capacity(shape.len());
        w_off.push(0);
        for w in shape.windows(2) {
            // Xavier/Glorot uniform initialisation, drawn layer by
            // layer in the historical order so seeds reproduce.
            let bound = (6.0 / (w[0] + w[1]) as f64).sqrt();
            let n = w[1] * (w[0] + 1);
            weights.extend((0..n).map(|_| rng.range_f64(-bound, bound)));
            w_off.push(weights.len());
        }
        let mut act_off = Vec::with_capacity(shape.len() + 1);
        act_off.push(0);
        for &s in shape {
            act_off.push(act_off.last().expect("seeded") + s);
        }
        let velocity = vec![0.0; weights.len()];
        Self {
            shape: shape.to_vec(),
            weights,
            velocity,
            w_off,
            act_off,
        }
    }

    /// Number of layers (weight matrices).
    #[inline]
    fn layer_count(&self) -> usize {
        self.shape.len() - 1
    }

    /// Activation of layer `l`: tanh for hidden layers, linear for the
    /// output layer.
    #[inline]
    fn activation_of(&self, l: usize) -> Activation {
        if l + 1 == self.layer_count() {
            Activation::Linear
        } else {
            Activation::Tanh
        }
    }

    /// Number of inputs the network expects.
    #[must_use]
    pub fn input_size(&self) -> usize {
        self.shape.first().copied().unwrap_or(0)
    }

    /// Number of outputs the network produces.
    #[must_use]
    pub fn output_size(&self) -> usize {
        self.shape.last().copied().unwrap_or(0)
    }

    /// One layer's forward pass from `input` into `out`.
    ///
    /// The activation dispatch is hoisted out of the row loop and the
    /// rows walked with `chunks_exact`, so the inner dot product is
    /// free of bounds checks; the accumulation order (bias first, then
    /// inputs in index order) is exactly the historical one.
    #[inline]
    fn layer_forward(&self, l: usize, input: &[f64], out: &mut [f64]) {
        let inputs = self.shape[l];
        debug_assert_eq!(input.len(), inputs);
        let w = &self.weights[self.w_off[l]..self.w_off[l + 1]];
        let rows = w.chunks_exact(inputs + 1);
        match self.activation_of(l) {
            Activation::Tanh => {
                for (slot, row) in out.iter_mut().zip(rows) {
                    *slot = dot_bias(row, input).tanh();
                }
            }
            Activation::Linear => {
                for (slot, row) in out.iter_mut().zip(rows) {
                    *slot = dot_bias(row, input);
                }
            }
        }
    }

    /// Full forward pass caching every layer's activations in `acts`
    /// (laid out per `act_off`).
    fn forward_into_acts(&self, input: &[f64], acts: &mut [f64]) {
        acts[..self.shape[0]].copy_from_slice(input);
        for l in 0..self.layer_count() {
            // Segments are consecutive, so splitting at the output
            // segment's start yields the input (left) and output
            // (right) slices without aliasing.
            let (prev, rest) = acts.split_at_mut(self.act_off[l + 1]);
            let inp = &prev[self.act_off[l]..];
            let out = &mut rest[..self.shape[l + 1]];
            self.layer_forward(l, inp, out);
        }
    }

    /// Whether the fused two-layer single-output fast path applies.
    #[inline]
    fn is_2l1(&self) -> bool {
        self.shape.len() == 3 && self.shape[2] == 1
    }

    /// Fused forward pass for a `[n, h, 1]` network (the paper's
    /// (6,3,1) everywhere in practice): tanh hidden row dot products
    /// straight into the scratch's hidden segment, then the linear
    /// output. Identical arithmetic to the generic path — only the
    /// per-layer bookkeeping (offset lookups, split_at_mut walks, the
    /// input copy nothing reads back) is gone. Returns the output.
    fn forward_2l1(&self, input: &[f64], acts: &mut [f64]) -> f64 {
        let n = self.shape[0];
        let h = self.shape[1];
        debug_assert_eq!(input.len(), n);
        let (w0, w1) = self.weights.split_at(self.w_off[1]);
        let hid_rest = &mut acts[n..];
        let (hid, out_slot) = hid_rest.split_at_mut(h);
        if h == 3 {
            // The paper's hidden width: keep the three row accumulators
            // in registers and interleave them, so the CPU overlaps the
            // three dependency chains instead of running them back to
            // back. Each accumulator still sees bias first, then
            // weight·input terms in ascending index order — the exact
            // per-slot sequence of the row-at-a-time loop.
            let (row0, rest) = w0.split_at(n + 1);
            let (row1, row2) = rest.split_at(n + 1);
            let mut a0 = row0[n];
            let mut a1 = row1[n];
            let mut a2 = row2[n];
            for (((x, w0i), w1i), w2i) in
                input.iter().zip(&row0[..n]).zip(&row1[..n]).zip(&row2[..n])
            {
                a0 += w0i * x;
                a1 += w1i * x;
                a2 += w2i * x;
            }
            hid[0] = a0.tanh();
            hid[1] = a1.tanh();
            hid[2] = a2.tanh();
        } else {
            for (slot, row) in hid.iter_mut().zip(w0.chunks_exact(n + 1)) {
                *slot = dot_bias(row, input).tanh();
            }
        }
        let o = dot_bias(w1, hid);
        out_slot[0] = o;
        o
    }

    /// Forward pass into a reusable scratch; returns the output slice.
    /// Allocation-free once the scratch is sized.
    ///
    /// # Panics
    /// Panics in debug builds if `input.len()` mismatches the network.
    pub fn forward_scratch<'s>(&self, input: &[f64], scratch: &'s mut Scratch) -> &'s [f64] {
        scratch.ensure(self);
        if self.is_2l1() {
            self.forward_2l1(input, &mut scratch.acts);
        } else {
            self.forward_into_acts(input, &mut scratch.acts);
        }
        let nl = self.layer_count();
        &scratch.acts[self.act_off[nl]..self.act_off[nl] + self.shape[nl]]
    }

    /// Batched forward pass: every row of `batch` through the network,
    /// outputs written row-major into `out` (`output_size()` values per
    /// row, so one `f64` per row for the paper's `[n, h, 1]` shape).
    ///
    /// Each row's arithmetic is exactly [`forward_scratch`]'s — the
    /// batch form only hoists the shape dispatch and scratch sizing out
    /// of the row loop, so outputs are bit-identical to per-row calls
    /// and the pass is allocation-free once the scratch is sized.
    ///
    /// # Panics
    /// Panics if `batch.width()` mismatches the network's input size or
    /// `out.len()` differs from `batch.rows() * output_size()`.
    ///
    /// [`forward_scratch`]: Self::forward_scratch
    pub fn forward_batch(&self, scratch: &mut Scratch, batch: &FeatureMatrix, out: &mut [f64]) {
        assert_eq!(batch.width(), self.input_size(), "feature width mismatch");
        let k = self.output_size();
        assert_eq!(out.len(), batch.rows() * k, "output length mismatch");
        scratch.ensure(self);
        if self.is_2l1() {
            for (slot, row) in out.iter_mut().zip(batch.rows_iter()) {
                *slot = self.forward_2l1(row, &mut scratch.acts);
            }
        } else {
            let nl = self.layer_count();
            let off = self.act_off[nl];
            for (slots, row) in out.chunks_exact_mut(k).zip(batch.rows_iter()) {
                self.forward_into_acts(row, &mut scratch.acts);
                slots.copy_from_slice(&scratch.acts[off..off + k]);
            }
        }
    }

    /// Forward pass.
    ///
    /// Convenience wrapper allocating a fresh [`Scratch`]; hot loops
    /// should hold their own scratch and call [`forward_scratch`].
    ///
    /// # Panics
    /// Panics in debug builds if `input.len()` mismatches the network.
    ///
    /// [`forward_scratch`]: Self::forward_scratch
    #[must_use]
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        let mut scratch = Scratch::default();
        self.forward_scratch(input, &mut scratch).to_vec()
    }

    /// One stochastic-gradient step on a single (input, target) pair
    /// with momentum, fused forward+backprop inside the caller's
    /// scratch — no heap allocation once the scratch is sized. Returns
    /// the pre-update squared error.
    pub fn train_step_scratch(
        &mut self,
        scratch: &mut Scratch,
        input: &[f64],
        target: &[f64],
        learning_rate: f64,
        momentum: f64,
    ) -> f64 {
        scratch.ensure(self);
        if self.is_2l1() {
            self.train_step_2l1(scratch, input, target, learning_rate, momentum)
        } else {
            self.train_step_generic(scratch, input, target, learning_rate, momentum)
        }
    }

    /// Generic any-depth train step (see [`train_step_scratch`]); the
    /// scratch must already be sized.
    ///
    /// [`train_step_scratch`]: Self::train_step_scratch
    fn train_step_generic(
        &mut self,
        scratch: &mut Scratch,
        input: &[f64],
        target: &[f64],
        learning_rate: f64,
        momentum: f64,
    ) -> f64 {
        let nl = self.layer_count();

        // Forward pass caching every layer's activations.
        self.forward_into_acts(input, &mut scratch.acts);
        let Scratch {
            acts,
            delta,
            prev_delta,
        } = scratch;
        let out_off = self.act_off[nl];
        let output = &acts[out_off..out_off + self.shape[nl]];
        debug_assert_eq!(output.len(), target.len());
        let loss: f64 = output
            .iter()
            .zip(target)
            .map(|(o, t)| (o - t) * (o - t))
            .sum();

        // Backward pass: delta for the output layer of MSE loss (the
        // derivative is expressed via the output itself).
        let act_last = self.activation_of(nl - 1);
        for ((d, o), t) in delta.iter_mut().zip(output).zip(target) {
            *d = 2.0 * (o - t) * act_last.derivative_from_output(*o);
        }

        // Every inner loop below is a zip over `chunks_exact` rows (no
        // bounds checks); each array slot still receives exactly the
        // historical operation sequence. In particular the propagated
        // delta accumulates `delta[o]·w[o][i]` over ascending `o`
        // starting from 0.0 — the same per-slot order as the original
        // per-`i` column sums, just driven row-major.
        for li in (0..nl).rev() {
            let inputs = self.shape[li];
            let outputs = self.shape[li + 1];
            let in_off = self.act_off[li];
            let acts_in = &acts[in_off..in_off + inputs];
            let w_range = self.w_off[li]..self.w_off[li + 1];
            // Compute the delta to propagate before mutating weights.
            if li > 0 {
                let below_act = self.activation_of(li - 1);
                let w = &self.weights[w_range.clone()];
                let pd = &mut prev_delta[..inputs];
                pd.fill(0.0);
                for (d, row) in delta[..outputs].iter().zip(w.chunks_exact(inputs + 1)) {
                    for (p, wv) in pd.iter_mut().zip(&row[..inputs]) {
                        *p += d * wv;
                    }
                }
                for (p, a) in pd.iter_mut().zip(acts_in) {
                    *p *= below_act.derivative_from_output(*a);
                }
            }
            let wl = &mut self.weights[w_range.clone()];
            let vl = &mut self.velocity[w_range];
            for ((row_w, row_v), d) in wl
                .chunks_exact_mut(inputs + 1)
                .zip(vl.chunks_exact_mut(inputs + 1))
                .zip(&delta[..outputs])
            {
                let (ww, wb) = row_w.split_at_mut(inputs);
                let (vv, vb) = row_v.split_at_mut(inputs);
                for ((wv, vel), a) in ww.iter_mut().zip(vv.iter_mut()).zip(acts_in) {
                    let grad = d * a;
                    let v = momentum * *vel - learning_rate * grad;
                    *vel = v;
                    *wv += v;
                }
                // Bias.
                let grad = *d;
                let v = momentum * vb[0] - learning_rate * grad;
                vb[0] = v;
                wb[0] += v;
            }
            std::mem::swap(delta, prev_delta);
        }
        loss
    }

    /// Fused forward+backprop step for a `[n, h, 1]` network. The
    /// operation sequence is the generic path's, verbatim: forward,
    /// squared error, output delta `2·(o−t)` (the linear derivative's
    /// `·1.0` is an exact identity), hidden deltas through the
    /// **pre-update** output row (accumulated from 0.0 like the generic
    /// column sums), then velocity/weight updates top layer first, rows
    /// in order, coefficients before bias.
    fn train_step_2l1(
        &mut self,
        scratch: &mut Scratch,
        input: &[f64],
        target: &[f64],
        learning_rate: f64,
        momentum: f64,
    ) -> f64 {
        let n = self.shape[0];
        let h = self.shape[1];
        let o = self.forward_2l1(input, &mut scratch.acts);
        let t = target[0];
        // A square is never -0.0, so skipping the generic path's
        // `0.0 + …` fold leaves the loss bit-identical.
        let loss = (o - t) * (o - t);
        let d_out = 2.0 * (o - t);

        let w_split = self.w_off[1];
        let (w0, w1) = self.weights.split_at_mut(w_split);
        let (v0, v1) = self.velocity.split_at_mut(w_split);
        let hid = &scratch.acts[n..n + h];

        // Hidden deltas through the pre-update output row.
        let pd = &mut scratch.prev_delta[..h];
        for ((p, wv), y) in pd.iter_mut().zip(w1.iter()).zip(hid) {
            let sum = 0.0 + d_out * wv;
            *p = sum * (1.0 - y * y);
        }

        // Output row update.
        {
            let (w1c, w1b) = w1.split_at_mut(h);
            let (v1c, v1b) = v1.split_at_mut(h);
            for ((wv, vel), y) in w1c.iter_mut().zip(v1c.iter_mut()).zip(hid) {
                let grad = d_out * y;
                let v = momentum * *vel - learning_rate * grad;
                *vel = v;
                *wv += v;
            }
            let v = momentum * v1b[0] - learning_rate * d_out;
            v1b[0] = v;
            w1b[0] += v;
        }

        // Hidden rows (the generic path reads the input back out of the
        // activation scratch; the values are the caller's, verbatim).
        for ((row_w, row_v), d) in w0
            .chunks_exact_mut(n + 1)
            .zip(v0.chunks_exact_mut(n + 1))
            .zip(pd.iter())
        {
            let (ww, wb) = row_w.split_at_mut(n);
            let (vv, vb) = row_v.split_at_mut(n);
            for ((wv, vel), x) in ww.iter_mut().zip(vv.iter_mut()).zip(input) {
                let grad = d * x;
                let v = momentum * *vel - learning_rate * grad;
                *vel = v;
                *wv += v;
            }
            let v = momentum * vb[0] - learning_rate * *d;
            vb[0] = v;
            wb[0] += v;
        }
        loss
    }

    /// One stochastic-gradient step on a single (input, target) pair
    /// with momentum. Returns the pre-update squared error.
    ///
    /// Convenience wrapper allocating a fresh [`Scratch`]; hot loops
    /// should hold their own scratch and call [`train_step_scratch`].
    ///
    /// [`train_step_scratch`]: Self::train_step_scratch
    pub fn train_step(
        &mut self,
        input: &[f64],
        target: &[f64],
        learning_rate: f64,
        momentum: f64,
    ) -> f64 {
        let mut scratch = Scratch::default();
        self.train_step_scratch(&mut scratch, input, target, learning_rate, momentum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_sizes() {
        let mut rng = Rng64::seed_from(1);
        let net = Mlp::new(&[6, 3, 1], &mut rng);
        assert_eq!(net.input_size(), 6);
        assert_eq!(net.output_size(), 1);
        assert_eq!(net.forward(&[0.0; 6]).len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_single_layer() {
        let mut rng = Rng64::seed_from(1);
        let _ = Mlp::new(&[4], &mut rng);
    }

    #[test]
    fn deterministic_initialisation() {
        let mut r1 = Rng64::seed_from(7);
        let mut r2 = Rng64::seed_from(7);
        let a = Mlp::new(&[4, 3, 1], &mut r1);
        let b = Mlp::new(&[4, 3, 1], &mut r2);
        assert_eq!(
            a.forward(&[0.1, 0.2, 0.3, 0.4]),
            b.forward(&[0.1, 0.2, 0.3, 0.4])
        );
    }

    #[test]
    fn scratch_paths_match_allocating_wrappers() {
        // The fused scratch kernels and the wrapper API must produce
        // bit-identical outputs and weight trajectories.
        let mut r1 = Rng64::seed_from(21);
        let mut r2 = Rng64::seed_from(21);
        let mut a = Mlp::new(&[6, 3, 1], &mut r1);
        let mut b = Mlp::new(&[6, 3, 1], &mut r2);
        let mut scratch = Scratch::default();
        let xs: Vec<[f64; 6]> = (0..50)
            .map(|i| std::array::from_fn(|j| ((i * 7 + j) as f64 * 0.13).sin()))
            .collect();
        for (i, x) in xs.iter().enumerate() {
            let t = [(i as f64 * 0.05).cos()];
            let la = a.train_step(x, &t, 0.05, 0.3);
            let lb = b.train_step_scratch(&mut scratch, x, &t, 0.05, 0.3);
            assert_eq!(la.to_bits(), lb.to_bits(), "loss diverged at sample {i}");
        }
        for x in &xs {
            let fa = a.forward(x);
            let fb = b.forward_scratch(x, &mut scratch);
            assert_eq!(fa[0].to_bits(), fb[0].to_bits());
        }
    }

    #[test]
    fn fused_2l1_path_matches_generic_bitwise() {
        // The paper-shape fast path must reproduce the generic layered
        // implementation bit for bit: same losses, same weight
        // trajectory, same forward outputs along the way.
        let mut r1 = Rng64::seed_from(33);
        let mut r2 = Rng64::seed_from(33);
        let mut fast = Mlp::new(&[6, 3, 1], &mut r1);
        let mut slow = Mlp::new(&[6, 3, 1], &mut r2);
        let mut s_fast = Scratch::default();
        let mut s_slow = Scratch::default();
        for i in 0..200 {
            let x: [f64; 6] = std::array::from_fn(|j| ((i * 11 + j * 3) as f64 * 0.07).sin());
            let t = [(i as f64 * 0.09).cos()];
            s_slow.ensure(&slow);
            let lf = fast.train_step_scratch(&mut s_fast, &x, &t, 0.05, 0.3);
            let ls = slow.train_step_generic(&mut s_slow, &x, &t, 0.05, 0.3);
            assert_eq!(lf.to_bits(), ls.to_bits(), "loss diverged at step {i}");
            let of = fast.forward_2l1(&x, &mut s_fast.acts);
            slow.forward_into_acts(&x, &mut s_slow.acts);
            let os = s_slow.acts[slow.act_off[2]];
            assert_eq!(of.to_bits(), os.to_bits(), "output diverged at step {i}");
        }
        for (a, b) in fast.weights.iter().zip(&slow.weights) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in fast.velocity.iter().zip(&slow.velocity) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn forward_batch_matches_per_row_bitwise() {
        // The batched kernel must be pinned to the per-row path bit for
        // bit, on both the fused paper shape and the generic layered
        // path (including a multi-output network).
        for shape in [&[6usize, 3, 1][..], &[5, 4, 2][..], &[4, 7, 3, 1][..]] {
            let mut rng = Rng64::seed_from(33);
            let net = Mlp::new(shape, &mut rng);
            let n = net.input_size();
            let k = net.output_size();
            let mut batch = FeatureMatrix::with_capacity(n, 200);
            for i in 0..200usize {
                let row: Vec<f64> = (0..n)
                    .map(|j| ((i * 11 + j * 3) as f64 * 0.07).sin())
                    .collect();
                batch.push_row(&row);
            }
            let mut s_batch = Scratch::default();
            let mut s_row = Scratch::default();
            let mut out = vec![0.0; batch.rows() * k];
            net.forward_batch(&mut s_batch, &batch, &mut out);
            for (i, slots) in out.chunks_exact(k).enumerate() {
                let per_row = net.forward_scratch(batch.row(i), &mut s_row);
                for (a, b) in slots.iter().zip(per_row) {
                    assert_eq!(a.to_bits(), b.to_bits(), "row {i} diverged ({shape:?})");
                }
            }
        }
    }

    #[test]
    fn feature_matrix_roundtrips_rows() {
        let mut m = FeatureMatrix::new(3);
        assert_eq!((m.rows(), m.width()), (0, 3));
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.rows_iter().count(), 2);
        m.clear();
        assert_eq!(m.rows(), 0);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn feature_matrix_rejects_ragged_rows() {
        let mut m = FeatureMatrix::new(3);
        m.push_row(&[1.0, 2.0]);
    }

    #[test]
    fn scratch_is_reusable_across_networks() {
        // One scratch serves differently-shaped networks back to back.
        let mut rng = Rng64::seed_from(2);
        let big = Mlp::new(&[8, 5, 2], &mut rng);
        let small = Mlp::new(&[2, 3, 1], &mut rng);
        let mut scratch = Scratch::default();
        assert_eq!(big.forward_scratch(&[0.1; 8], &mut scratch).len(), 2);
        let out = small.forward_scratch(&[0.3, -0.2], &mut scratch)[0];
        assert_eq!(out.to_bits(), small.forward(&[0.3, -0.2])[0].to_bits());
    }

    #[test]
    fn learns_linear_function() {
        // y = 0.5·x1 − 0.3·x2 + 0.1.
        let mut rng = Rng64::seed_from(3);
        let mut net = Mlp::new(&[2, 4, 1], &mut rng);
        let f = |x1: f64, x2: f64| 0.5 * x1 - 0.3 * x2 + 0.1;
        let mut data_rng = Rng64::seed_from(11);
        let samples: Vec<([f64; 2], f64)> = (0..200)
            .map(|_| {
                let x1 = data_rng.range_f64(-1.0, 1.0);
                let x2 = data_rng.range_f64(-1.0, 1.0);
                ([x1, x2], f(x1, x2))
            })
            .collect();
        let mut scratch = Scratch::default();
        for _era in 0..200 {
            for (x, y) in &samples {
                net.train_step_scratch(&mut scratch, x, &[*y], 0.05, 0.5);
            }
        }
        let mse: f64 = samples
            .iter()
            .map(|(x, y)| {
                let o = net.forward(x)[0];
                (o - y) * (o - y)
            })
            .sum::<f64>()
            / samples.len() as f64;
        assert!(mse < 1e-3, "mse {mse}");
    }

    #[test]
    fn learns_nonlinear_function() {
        // y = x² on [−1, 1] needs the hidden tanh layer.
        let mut rng = Rng64::seed_from(5);
        let mut net = Mlp::new(&[1, 6, 1], &mut rng);
        let xs: Vec<f64> = (0..40).map(|i| -1.0 + 2.0 * i as f64 / 39.0).collect();
        for _era in 0..800 {
            for &x in &xs {
                net.train_step(&[x], &[x * x], 0.05, 0.3);
            }
        }
        let mse: f64 = xs
            .iter()
            .map(|&x| {
                let o = net.forward(&[x])[0];
                (o - x * x) * (o - x * x)
            })
            .sum::<f64>()
            / xs.len() as f64;
        assert!(mse < 5e-3, "mse {mse}");
    }

    #[test]
    fn train_step_reports_decreasing_loss() {
        let mut rng = Rng64::seed_from(9);
        let mut net = Mlp::new(&[3, 3, 1], &mut rng);
        let input = [0.2, -0.4, 0.6];
        let target = [0.5];
        let first = net.train_step(&input, &target, 0.1, 0.0);
        let mut last = first;
        for _ in 0..100 {
            last = net.train_step(&input, &target, 0.1, 0.0);
        }
        assert!(last < first * 0.01, "first {first} last {last}");
    }

    #[test]
    fn paper_structure_631_trains() {
        let mut rng = Rng64::seed_from(13);
        let mut net = Mlp::new(&[6, 3, 1], &mut rng);
        // Predict the next value of a normalised sine from 6 lags.
        let series: Vec<f64> = (0..300)
            .map(|i| 0.5 + 0.4 * (i as f64 * 0.2).sin())
            .collect();
        for _era in 0..60 {
            for w in series.windows(7) {
                net.train_step(&w[..6], &[w[6]], 0.05, 0.3);
            }
        }
        let mut worst: f64 = 0.0;
        for w in series.windows(7).take(50) {
            let pred = net.forward(&w[..6])[0];
            worst = worst.max((pred - w[6]).abs());
        }
        assert!(worst < 0.1, "worst abs error {worst}");
    }
}
