//! The prediction bake-off harness behind Figures 5 and 6.
//!
//! Sec. IV-D.2 defines the score: "we define the un-normalized sample
//! prediction error as the absolute value of the difference between the
//! sample and the prediction made by [the] algorithm for that sample…
//! the prediction error for an input trace data set [is] the ratio
//! between the sum of un-normalized sample prediction errors for all
//! samples and the sum of all samples in the trace data set, expressed
//! as a percentage."

use crate::ar::ArPredictor;
use crate::neural::{NeuralConfig, NeuralPredictor};
use crate::simple::{
    ExpSmoothing, Holt, LastValue, MovingAverage, RunningAverage, SeasonalNaive,
    SlidingWindowMedian,
};
use crate::traits::Predictor;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The paper's data-set prediction error, in percent. `skip` initial
/// samples are excluded from scoring (cold-start warm-up) but the
/// corresponding actual values still count toward alignment.
///
/// # Panics
/// Panics if the two slices differ in length.
#[must_use]
pub fn prediction_error(actual: &[f64], predicted: &[f64], skip: usize) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "series must align");
    let skip = skip.min(actual.len());
    let err: f64 = actual[skip..]
        .iter()
        .zip(&predicted[skip..])
        .map(|(a, p)| (a - p).abs())
        .sum();
    let total: f64 = actual[skip..].iter().sum();
    if total <= 0.0 {
        return if err == 0.0 { 0.0 } else { 100.0 };
    }
    100.0 * err / total
}

/// Identifies one of the evaluated prediction algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictorKind {
    /// The neural predictor of Sec. IV-C.
    Neural,
    /// Running mean of the whole history.
    Average,
    /// Mean over a sliding window (10 samples).
    MovingAverage,
    /// Persistence forecast.
    LastValue,
    /// Exponential smoothing α = 0.25.
    ExpSmoothing25,
    /// Exponential smoothing α = 0.5.
    ExpSmoothing50,
    /// Exponential smoothing α = 0.75.
    ExpSmoothing75,
    /// Median over a sliding window (10 samples).
    SlidingWindowMedian,
    /// AR(p) via Yule–Walker (extension).
    Ar,
    /// Holt double exponential smoothing (extension).
    Holt,
    /// Daily seasonal-naïve forecast (extension).
    Seasonal,
}

impl PredictorKind {
    /// The seven algorithms of Figure 5, in legend order.
    pub const FIGURE5: [Self; 7] = [
        Self::Neural,
        Self::Average,
        Self::MovingAverage,
        Self::LastValue,
        Self::ExpSmoothing25,
        Self::ExpSmoothing50,
        Self::ExpSmoothing75,
    ];

    /// The six predictors driving Table V (exp. smoothing collapsed to
    /// α = 0.5 as in the table, plus sliding-window median).
    pub const TABLE5: [Self; 6] = [
        Self::Neural,
        Self::Average,
        Self::LastValue,
        Self::MovingAverage,
        Self::SlidingWindowMedian,
        Self::ExpSmoothing50,
    ];

    /// Display name matching the paper's legends.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Neural => "Neural",
            Self::Average => "Average",
            Self::MovingAverage => "Moving average",
            Self::LastValue => "Last value",
            Self::ExpSmoothing25 => "Exp. Smoothing 25%",
            Self::ExpSmoothing50 => "Exp. Smoothing 50%",
            Self::ExpSmoothing75 => "Exp. Smoothing 75%",
            Self::SlidingWindowMedian => "Sliding window median",
            Self::Ar => "AR(p)",
            Self::Holt => "Holt",
            Self::Seasonal => "Seasonal naive",
        }
    }

    /// Builds the predictor; `training` supplies the collected data for
    /// algorithms with an offline phase (only the neural one uses it).
    #[must_use]
    pub fn build(self, training: &[f64]) -> Box<dyn Predictor + Send> {
        self.build_seeded(training, NeuralConfig::default().seed)
    }

    /// Like [`build`], with an explicit seed for the stochastic offline
    /// phase (weight initialisation and sample shuffling of the neural
    /// predictor; the closed-form algorithms ignore it). The simulation
    /// engine derives one seed per server group from its master seed so
    /// that groups train uncorrelated models deterministically,
    /// independent of construction order or thread count.
    ///
    /// [`build`]: Self::build
    #[must_use]
    pub fn build_seeded(self, training: &[f64], seed: u64) -> Box<dyn Predictor + Send> {
        match self {
            Self::Neural => {
                let cfg = NeuralConfig {
                    seed,
                    ..NeuralConfig::default()
                };
                let (p, _report) = NeuralPredictor::train(cfg, training);
                Box::new(p)
            }
            Self::Average => Box::new(RunningAverage::new()),
            Self::MovingAverage => Box::new(MovingAverage::new(10)),
            Self::LastValue => Box::new(LastValue::new()),
            Self::ExpSmoothing25 => Box::new(ExpSmoothing::new(0.25)),
            Self::ExpSmoothing50 => Box::new(ExpSmoothing::new(0.5)),
            Self::ExpSmoothing75 => Box::new(ExpSmoothing::new(0.75)),
            Self::SlidingWindowMedian => Box::new(SlidingWindowMedian::new(10)),
            Self::Ar => Box::new(ArPredictor::default_paper()),
            Self::Holt => Box::new(Holt::new(0.6, 0.3)),
            Self::Seasonal => Box::new(SeasonalNaive::daily()),
        }
    }
}

/// One row of the Figure 5 comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccuracyResult {
    /// Algorithm label.
    pub name: String,
    /// Paper-metric prediction error in percent.
    pub error_pct: f64,
}

/// Evaluates the given algorithms on a series: the first
/// `train_fraction` becomes the offline collection phase (the neural
/// predictor trains on it; every algorithm also warms up on it), and
/// the error is scored on the remainder.
#[must_use]
pub fn evaluate_accuracy(
    series: &[f64],
    kinds: &[PredictorKind],
    train_fraction: f64,
) -> Vec<AccuracyResult> {
    let split = ((series.len() as f64) * train_fraction.clamp(0.0, 1.0)).round() as usize;
    let split = split.min(series.len().saturating_sub(1));
    let (train, eval) = series.split_at(split);
    kinds
        .iter()
        .map(|kind| {
            let mut p = kind.build(train);
            // Warm-up pass over the training span (live observation).
            for &x in train {
                p.observe(x);
            }
            let mut preds = Vec::with_capacity(eval.len());
            for &x in eval {
                preds.push(p.predict());
                p.observe(x);
            }
            AccuracyResult {
                name: kind.label().to_string(),
                error_pct: prediction_error(eval, &preds, 0),
            }
        })
        .collect()
}

/// Latency sample set for one algorithm (Figure 6): nanoseconds per
/// `predict()` call, measured in batches to defeat timer resolution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyResult {
    /// Algorithm label.
    pub name: String,
    /// Per-call latencies in nanoseconds (one per measured batch).
    pub samples_ns: Vec<f64>,
}

/// Measures per-prediction latency: feeds the series, then times
/// `batches` batches of `batch_size` `predict()` calls each.
#[must_use]
pub fn measure_latency(
    kind: PredictorKind,
    series: &[f64],
    batches: usize,
    batch_size: usize,
) -> LatencyResult {
    let _span = mmog_obs::span("predict/measure_latency");
    let split = series.len() / 2;
    let mut p = kind.build(&series[..split]);
    for &x in series {
        p.observe(x);
    }
    // Wall-clock samples are inherently run-dependent: Timing domain,
    // masked out by the determinism suite.
    let hist = mmog_obs::histogram(
        "predict.latency_us",
        mmog_obs::Domain::Timing,
        &[0.01, 0.1, 1.0, 10.0, 100.0],
    );
    let mut samples = Vec::with_capacity(batches);
    let mut sink = 0.0;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..batch_size {
            sink += p.predict();
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        let per_call = elapsed / batch_size as f64;
        hist.record(per_call / 1_000.0);
        samples.push(per_call);
    }
    // Keep the sink alive so the calls are not optimised away.
    assert!(sink.is_finite());
    LatencyResult {
        name: kind.label().to_string(),
        samples_ns: samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmog_util::rng::Rng64;

    fn noisy_sine(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng64::seed_from(seed);
        (0..n)
            .map(|i| {
                (500.0
                    + 300.0 * (i as f64 * 2.0 * std::f64::consts::PI / 200.0).sin()
                    + 10.0 * rng.normal())
                .max(0.0)
            })
            .collect()
    }

    #[test]
    fn error_metric_matches_paper_definition() {
        let actual = [10.0, 20.0, 30.0];
        let predicted = [12.0, 18.0, 33.0];
        // Σ|err| = 2+2+3 = 7; Σ actual = 60 → 11.666%.
        let e = prediction_error(&actual, &predicted, 0);
        assert!((e - 100.0 * 7.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_prediction_is_zero_error() {
        let xs = [5.0, 6.0, 7.0];
        assert_eq!(prediction_error(&xs, &xs, 0), 0.0);
    }

    #[test]
    fn skip_excludes_cold_start() {
        let actual = [100.0, 10.0, 10.0];
        let predicted = [0.0, 10.0, 10.0];
        assert!(prediction_error(&actual, &predicted, 0) > 0.0);
        assert_eq!(prediction_error(&actual, &predicted, 1), 0.0);
    }

    #[test]
    fn zero_total_edge_case() {
        assert_eq!(prediction_error(&[0.0, 0.0], &[0.0, 0.0], 0), 0.0);
        assert_eq!(prediction_error(&[0.0], &[5.0], 0), 100.0);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        let _ = prediction_error(&[1.0], &[1.0, 2.0], 0);
    }

    #[test]
    fn all_kinds_build_and_predict() {
        let train = noisy_sine(400, 1);
        for kind in [
            PredictorKind::Neural,
            PredictorKind::Average,
            PredictorKind::MovingAverage,
            PredictorKind::LastValue,
            PredictorKind::ExpSmoothing25,
            PredictorKind::ExpSmoothing50,
            PredictorKind::ExpSmoothing75,
            PredictorKind::SlidingWindowMedian,
            PredictorKind::Ar,
            PredictorKind::Holt,
            PredictorKind::Seasonal,
        ] {
            let mut p = kind.build(&train);
            for &x in &train[..50] {
                p.observe(x);
            }
            let pred = p.predict();
            assert!(pred.is_finite(), "{}: {pred}", kind.label());
        }
    }

    #[test]
    fn figure5_set_has_seven_members() {
        assert_eq!(PredictorKind::FIGURE5.len(), 7);
        assert_eq!(PredictorKind::TABLE5.len(), 6);
        assert_eq!(PredictorKind::FIGURE5[0].label(), "Neural");
    }

    #[test]
    fn average_is_the_outlier_on_periodic_signals() {
        // Table V's headline: the Average predictor is the poor
        // performer on diurnal signals.
        let series = noisy_sine(1200, 3);
        let results = evaluate_accuracy(
            &series,
            &[
                PredictorKind::Average,
                PredictorKind::LastValue,
                PredictorKind::Neural,
            ],
            0.5,
        );
        let err = |name: &str| {
            results
                .iter()
                .find(|r| r.name == name)
                .map(|r| r.error_pct)
                .unwrap()
        };
        assert!(err("Average") > 2.0 * err("Last value"), "avg should trail");
        assert!(err("Neural") < err("Average"));
    }

    #[test]
    fn neural_competitive_with_last_value_on_smooth_signal() {
        let series = noisy_sine(1600, 5);
        let results = evaluate_accuracy(
            &series,
            &[PredictorKind::Neural, PredictorKind::LastValue],
            0.5,
        );
        let neural = results[0].error_pct;
        let last = results[1].error_pct;
        assert!(neural < last * 1.3, "neural {neural}% vs last {last}%");
    }

    #[test]
    fn latency_measurement_produces_positive_samples() {
        let series = noisy_sine(300, 7);
        let res = measure_latency(PredictorKind::LastValue, &series, 5, 1000);
        assert_eq!(res.samples_ns.len(), 5);
        assert!(res.samples_ns.iter().all(|&ns| ns >= 0.0));
    }

    #[test]
    fn evaluation_is_deterministic() {
        let series = noisy_sine(800, 9);
        let a = evaluate_accuracy(&series, &PredictorKind::FIGURE5, 0.5);
        let b = evaluate_accuracy(&series, &PredictorKind::FIGURE5, 0.5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.error_pct, y.error_pct, "{}", x.name);
        }
    }
}
