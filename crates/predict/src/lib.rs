//! Load prediction for MMOGs — Section IV of the paper.
//!
//! "Fast and accurate load prediction with respect to the number of
//! players and interactions per game zone is needed to dynamically
//! allocate resources for MMOGs." The paper compares seven time-series
//! prediction algorithms and proposes a neural-network predictor that
//! "delivers the best accuracy while offering prediction results at an
//! appropriate speed".
//!
//! - [`traits`] — the [`Predictor`] one-step-ahead interface.
//! - [`simple`] — the six baselines of Figure 5: last value, running
//!   average, moving average, sliding-window median, and exponential
//!   smoothing at α ∈ {0.25, 0.5, 0.75}.
//! - [`ar`] — an autoregressive AR(p) predictor fit by Yule–Walker /
//!   Levinson–Durbin (the paper names ARMA-family models as accurate but
//!   "ill suited for MMOGs" on speed grounds; we implement AR(p) to test
//!   that trade-off ourselves).
//! - [`mlp`] — a from-scratch multi-layer perceptron with
//!   backpropagation and momentum; the paper's predictor is a "three
//!   layered MLP with a (6,3,1) structure".
//! - [`preprocess`] — "signal preprocessors … based on several
//!   polynomial functions which have the purpose of removing the
//!   unwanted noise from the processed signal" (least-squares polynomial
//!   window smoothing) plus running normalisation.
//! - [`neural`] — the full neural predictor: window of 6 inputs,
//!   polynomial preprocessing, offline training phase with training
//!   eras and a convergence criterion (Sec. IV-C), optional online
//!   fine-tuning.
//! - [`subzone`] — per-sub-zone predictor banks ("the predictor uses as
//!   input the entity count for each sub-zone … the predicted entity
//!   count for the entire game world is the sum of all the sub-zone
//!   predictions", Sec. IV-B).
//! - [`eval`] — the paper's prediction-error metric (Sec. IV-D.2) and
//!   the bake-off harness behind Figures 5 and 6.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ar;
pub mod eval;
pub mod mlp;
pub mod neural;
pub mod preprocess;
pub mod simple;
pub mod subzone;
pub mod traits;

pub use eval::{evaluate_accuracy, prediction_error, PredictorKind};
pub use neural::{NeuralConfig, NeuralPredictor};
pub use subzone::SubZoneBank;
pub use traits::Predictor;
