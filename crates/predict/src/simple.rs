//! The six simple baselines of Figure 5.
//!
//! "The simple prediction algorithms (like exponential smoothing and
//! variants thereof) are computationally inexpensive and can be applied
//! in parallel on several data sets, but their predictive power is
//! limited" (Sec. IV-A). The figure compares: Average, Moving average,
//! Last value, Exp. Smoothing 25% / 50% / 75%, and Sliding window
//! median.

use crate::traits::Predictor;
use std::collections::VecDeque;

/// Predicts the last observed value (naïve / persistence forecast).
#[derive(Debug, Clone, Default)]
pub struct LastValue {
    last: Option<f64>,
}

impl LastValue {
    /// Creates the predictor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Predictor for LastValue {
    fn name(&self) -> &str {
        "Last value"
    }
    fn observe(&mut self, value: f64) {
        self.last = Some(value);
    }
    fn predict(&self) -> f64 {
        self.last.unwrap_or(0.0)
    }
    fn reset(&mut self) {
        self.last = None;
    }
    fn observe_predict(&mut self, value: f64) -> f64 {
        // The persistence forecast after observing `value` is `value`
        // itself — skip the Option round-trip on the hot path.
        self.last = Some(value);
        value
    }
}

/// Predicts the running mean of the entire history ("Average" in the
/// paper's figures; performs poorly on non-stationary signals, which is
/// exactly what Table V shows).
#[derive(Debug, Clone, Default)]
pub struct RunningAverage {
    sum: f64,
    n: u64,
}

impl RunningAverage {
    /// Creates the predictor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Predictor for RunningAverage {
    fn name(&self) -> &str {
        "Average"
    }
    fn observe(&mut self, value: f64) {
        self.sum += value;
        self.n += 1;
    }
    fn predict(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }
    fn reset(&mut self) {
        self.sum = 0.0;
        self.n = 0;
    }
}

/// Mean of the last `window` samples.
#[derive(Debug, Clone)]
pub struct MovingAverage {
    window: usize,
    buf: VecDeque<f64>,
    sum: f64,
}

impl MovingAverage {
    /// Creates a moving average over the given window length.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    #[must_use]
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            buf: VecDeque::with_capacity(window),
            sum: 0.0,
        }
    }
}

impl Predictor for MovingAverage {
    fn name(&self) -> &str {
        "Moving average"
    }
    fn observe(&mut self, value: f64) {
        self.buf.push_back(value);
        self.sum += value;
        if self.buf.len() > self.window {
            self.sum -= self.buf.pop_front().expect("non-empty");
        }
    }
    fn predict(&self) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            self.sum / self.buf.len() as f64
        }
    }
    fn reset(&mut self) {
        self.buf.clear();
        self.sum = 0.0;
    }
}

/// Median of the last `window` samples ("Sliding window median").
#[derive(Debug, Clone)]
pub struct SlidingWindowMedian {
    window: usize,
    buf: VecDeque<f64>,
}

impl SlidingWindowMedian {
    /// Creates a sliding median over the given window length.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    #[must_use]
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            buf: VecDeque::with_capacity(window),
        }
    }
}

impl Predictor for SlidingWindowMedian {
    fn name(&self) -> &str {
        "Sliding window median"
    }
    fn observe(&mut self, value: f64) {
        self.buf.push_back(value);
        if self.buf.len() > self.window {
            self.buf.pop_front();
        }
    }
    fn predict(&self) -> f64 {
        if self.buf.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<f64> = self.buf.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        mmog_util::stats::quantile_sorted(&sorted, 0.5)
    }
    fn reset(&mut self) {
        self.buf.clear();
    }
}

/// Exponential smoothing: `s ← α·x + (1−α)·s`. The paper evaluates
/// α ∈ {0.25, 0.5, 0.75} ("Exp. Smoothing 25% / 50% / 75%").
#[derive(Debug, Clone)]
pub struct ExpSmoothing {
    alpha: f64,
    state: Option<f64>,
    name: String,
}

impl ExpSmoothing {
    /// Creates exponential smoothing with factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Self {
            alpha,
            state: None,
            name: format!("Exp. smoothing {:.0}%", alpha * 100.0),
        }
    }
}

impl Predictor for ExpSmoothing {
    fn name(&self) -> &str {
        &self.name
    }
    fn observe(&mut self, value: f64) {
        self.state = Some(match self.state {
            None => value,
            Some(s) => self.alpha * value + (1.0 - self.alpha) * s,
        });
    }
    fn predict(&self) -> f64 {
        self.state.unwrap_or(0.0)
    }
    fn reset(&mut self) {
        self.state = None;
    }
}

/// Holt's double exponential smoothing (level + trend) — an extension
/// beyond the paper's baseline set, useful on ramping loads.
#[derive(Debug, Clone)]
pub struct Holt {
    alpha: f64,
    beta: f64,
    state: Option<(f64, f64)>,
}

impl Holt {
    /// Creates Holt smoothing with level factor `alpha` and trend factor
    /// `beta`, both in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if either factor is outside `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0,1]");
        Self {
            alpha,
            beta,
            state: None,
        }
    }
}

impl Predictor for Holt {
    fn name(&self) -> &str {
        "Holt"
    }
    fn observe(&mut self, value: f64) {
        self.state = Some(match self.state {
            None => (value, 0.0),
            Some((level, trend)) => {
                let new_level = self.alpha * value + (1.0 - self.alpha) * (level + trend);
                let new_trend = self.beta * (new_level - level) + (1.0 - self.beta) * trend;
                (new_level, new_trend)
            }
        });
    }
    fn predict(&self) -> f64 {
        match self.state {
            None => 0.0,
            Some((level, trend)) => level + trend,
        }
    }
    fn reset(&mut self) {
        self.state = None;
    }
}

/// Seasonal-naïve forecasting: predicts the value observed exactly one
/// season ago, blended with the latest observation while the first
/// season is still filling. MMOG populations are strongly diurnal
/// (Figure 3's 24-hour autocorrelation peak), which makes the 720-tick
/// season a natural extension beyond the paper's baseline set.
#[derive(Debug, Clone)]
pub struct SeasonalNaive {
    period: usize,
    history: VecDeque<f64>,
    /// Blend factor towards the seasonal value once available: the
    /// forecast is `blend·x[t−period] + (1−blend)·x[t−1]`, correcting
    /// the season's shape by the current level.
    blend: f64,
}

impl SeasonalNaive {
    /// Creates a seasonal-naïve predictor with the given period (in
    /// samples) and seasonal blend factor in `[0, 1]`.
    ///
    /// # Panics
    /// Panics if `period == 0` or `blend` is outside `[0, 1]`.
    #[must_use]
    pub fn new(period: usize, blend: f64) -> Self {
        assert!(period > 0, "period must be positive");
        assert!((0.0..=1.0).contains(&blend), "blend must be in [0,1]");
        Self {
            period,
            history: VecDeque::with_capacity(period + 1),
            blend,
        }
    }

    /// One simulated day at the paper's 2-minute sampling, fully
    /// seasonal.
    #[must_use]
    pub fn daily() -> Self {
        Self::new(720, 0.7)
    }
}

impl Predictor for SeasonalNaive {
    fn name(&self) -> &str {
        "Seasonal naive"
    }
    fn observe(&mut self, value: f64) {
        self.history.push_back(value);
        if self.history.len() > self.period {
            self.history.pop_front();
        }
    }
    fn predict(&self) -> f64 {
        let Some(&last) = self.history.back() else {
            return 0.0;
        };
        if self.history.len() < self.period {
            return last;
        }
        // Front of the deque is exactly `period` samples back.
        let seasonal = self.history[0];
        self.blend * seasonal + (1.0 - self.blend) * last
    }
    fn reset(&mut self) {
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::predictions_for;

    #[test]
    fn last_value_tracks_input() {
        let mut p = LastValue::new();
        assert_eq!(p.predict(), 0.0);
        p.observe(5.0);
        assert_eq!(p.predict(), 5.0);
        p.observe(7.0);
        assert_eq!(p.predict(), 7.0);
        p.reset();
        assert_eq!(p.predict(), 0.0);
    }

    #[test]
    fn running_average_is_global_mean() {
        let mut p = RunningAverage::new();
        for x in [2.0, 4.0, 6.0] {
            p.observe(x);
        }
        assert_eq!(p.predict(), 4.0);
    }

    #[test]
    fn moving_average_windows() {
        let mut p = MovingAverage::new(2);
        for x in [1.0, 3.0, 5.0, 7.0] {
            p.observe(x);
        }
        assert_eq!(p.predict(), 6.0); // mean of 5, 7
        p.reset();
        assert_eq!(p.predict(), 0.0);
        p.observe(10.0);
        assert_eq!(p.predict(), 10.0); // partial window
    }

    #[test]
    fn sliding_median_robust_to_spike() {
        let mut p = SlidingWindowMedian::new(5);
        for x in [10.0, 10.0, 10.0, 1000.0, 10.0] {
            p.observe(x);
        }
        assert_eq!(p.predict(), 10.0);
    }

    #[test]
    fn sliding_median_even_window_interpolates() {
        let mut p = SlidingWindowMedian::new(4);
        for x in [1.0, 2.0, 3.0, 4.0] {
            p.observe(x);
        }
        assert_eq!(p.predict(), 2.5);
    }

    #[test]
    fn exp_smoothing_converges_to_constant() {
        let mut p = ExpSmoothing::new(0.5);
        for _ in 0..40 {
            p.observe(8.0);
        }
        assert!((p.predict() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn exp_smoothing_alpha_one_is_last_value() {
        let mut p = ExpSmoothing::new(1.0);
        p.observe(3.0);
        p.observe(9.0);
        assert_eq!(p.predict(), 9.0);
    }

    #[test]
    fn exp_smoothing_lags_less_with_higher_alpha() {
        // Step input: higher alpha adapts faster.
        let series: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 100.0 }).collect();
        let mut slow = ExpSmoothing::new(0.25);
        let mut fast = ExpSmoothing::new(0.75);
        for &x in &series {
            slow.observe(x);
            fast.observe(x);
        }
        assert!(fast.predict() > slow.predict());
    }

    #[test]
    fn holt_extrapolates_trend() {
        let mut p = Holt::new(0.8, 0.8);
        for i in 0..50 {
            p.observe(f64::from(i) * 2.0);
        }
        // Next value would be 100; Holt should be close, LastValue is 98.
        assert!((p.predict() - 100.0).abs() < 2.0, "holt {}", p.predict());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(LastValue::new().name(), "Last value");
        assert_eq!(RunningAverage::new().name(), "Average");
        assert_eq!(ExpSmoothing::new(0.25).name(), "Exp. smoothing 25%");
        assert_eq!(SlidingWindowMedian::new(3).name(), "Sliding window median");
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = MovingAverage::new(0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn bad_alpha_rejected() {
        let _ = ExpSmoothing::new(0.0);
    }

    #[test]
    fn seasonal_naive_repeats_the_season() {
        // A strict 4-sample cycle is predicted perfectly once one full
        // season has been observed (blend 1.0 = pure seasonal).
        let cycle = [10.0, 20.0, 30.0, 40.0];
        let mut p = SeasonalNaive::new(4, 1.0);
        for &x in cycle.iter().cycle().take(4) {
            p.observe(x);
        }
        for &expected in cycle.iter().cycle().take(12) {
            assert_eq!(p.predict(), expected);
            p.observe(expected);
        }
    }

    #[test]
    fn seasonal_naive_falls_back_to_last_value_early() {
        let mut p = SeasonalNaive::new(10, 0.7);
        assert_eq!(p.predict(), 0.0);
        p.observe(5.0);
        assert_eq!(p.predict(), 5.0);
    }

    #[test]
    fn seasonal_blend_mixes_level_and_shape() {
        let mut p = SeasonalNaive::new(2, 0.5);
        p.observe(10.0); // seasonal slot
        p.observe(20.0); // last value
                         // forecast = 0.5*10 + 0.5*20 = 15.
        assert_eq!(p.predict(), 15.0);
        p.reset();
        assert_eq!(p.predict(), 0.0);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn seasonal_zero_period_rejected() {
        let _ = SeasonalNaive::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "blend must be in")]
    fn seasonal_bad_blend_rejected() {
        let _ = SeasonalNaive::new(10, 1.5);
    }

    #[test]
    fn observe_predict_matches_split_calls() {
        let mut fused = LastValue::new();
        let mut split = LastValue::new();
        for x in [3.0, 0.0, -2.5, 7.125] {
            let f = fused.observe_predict(x);
            split.observe(x);
            assert_eq!(f.to_bits(), split.predict().to_bits());
        }
    }

    #[test]
    fn prediction_alignment_via_helper() {
        let mut p = LastValue::new();
        let preds = predictions_for(&mut p, &[1.0, 2.0, 3.0]);
        // Prediction for sample i is made before observing it.
        assert_eq!(preds, vec![0.0, 1.0, 2.0]);
    }
}
