//! Property-based tests for the provisioning simulator.

use mmog_datacenter::center::{DataCenter, DataCenterId, DataCenterSpec};
use mmog_datacenter::policy::HostingPolicy;
use mmog_datacenter::request::OperatorId;
use mmog_datacenter::resource::{ResourceType, ResourceVector};
use mmog_predict::simple::LastValue;
use mmog_sim::demand::DemandModel;
use mmog_sim::metrics::MetricsCollector;
use mmog_sim::provision::GroupProvisioner;
use mmog_util::geo::{DistanceClass, GeoPoint};
use mmog_util::time::{SimDuration, SimTime};
use mmog_world::update::UpdateModel;
use proptest::prelude::*;

fn one_center(machines: u32, hp: usize) -> Vec<DataCenter> {
    vec![DataCenter::new(DataCenterSpec {
        id: DataCenterId(0),
        name: "dc".into(),
        country: "X".into(),
        continent: "Y".into(),
        location: GeoPoint::new(50.0, 10.0),
        machines,
        machine_capacity: DataCenterSpec::default_machine_capacity(),
        policy: HostingPolicy::hp(hp),
    })]
}

fn provisioner(model: UpdateModel) -> GroupProvisioner {
    GroupProvisioner::new(
        OperatorId(1),
        GeoPoint::new(50.0, 10.0),
        DistanceClass::VeryFar,
        DemandModel::paper(model),
        1.0,
        Box::new(LastValue::new()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn demand_components_non_negative_and_monotone(
        players_a in 0.0f64..3000.0,
        delta in 0.0f64..1000.0,
    ) {
        for model in UpdateModel::ALL {
            let dm = DemandModel::paper(model);
            let lo = dm.demand(players_a);
            let hi = dm.demand(players_a + delta);
            for r in ResourceType::ALL {
                prop_assert!(lo.get(r) >= 0.0);
                prop_assert!(hi.get(r) + 1e-12 >= lo.get(r), "{model} {r} not monotone");
            }
        }
    }

    #[test]
    fn provisioner_allocation_always_matches_lease_ledger(
        loads in prop::collection::vec(0.0f64..2200.0, 1..60),
        hp in 1usize..12,
    ) {
        let mut centers = one_center(50, hp);
        let mut p = provisioner(UpdateModel::Quadratic);
        let mut now = SimTime::ZERO;
        for &players in &loads {
            let target = p.observe_and_target(players);
            p.adjust(&target, &mut centers, now);
            // The center's ledger for this operator must equal the
            // provisioner's own bookkeeping.
            let held = centers[0].held_by(OperatorId(1));
            for r in ResourceType::ALL {
                prop_assert!(
                    (held.get(r) - p.allocated().get(r)).abs() < 1e-6,
                    "{r}: ledger {} vs provisioner {}",
                    held.get(r),
                    p.allocated().get(r)
                );
            }
            now += SimDuration::TICK;
        }
    }

    #[test]
    fn provisioner_covers_target_when_capacity_allows(
        loads in prop::collection::vec(0.0f64..2000.0, 1..40),
    ) {
        // 100 machines >> 1 group's worst-case demand: every target must
        // be fully covered right after adjustment.
        let mut centers = one_center(100, 5);
        let mut p = provisioner(UpdateModel::Quadratic);
        let mut now = SimTime::ZERO;
        for &players in &loads {
            let target = p.observe_and_target(players);
            let out = p.adjust(&target, &mut centers, now);
            prop_assert!(!out.unmet);
            prop_assert!(
                target.fits_within(&p.allocated(), 1e-6),
                "target {target} not covered by {}",
                p.allocated()
            );
            now += SimDuration::TICK;
        }
    }

    #[test]
    fn memoized_provisioner_matches_full_walk_grant_for_grant(
        ops in prop::collection::vec((0u8..10, 0.0f64..2200.0), 1..60),
        hp in 1usize..12,
    ) {
        // Two replicas of the same world — one with the no-op memo, one
        // forced down the full CandidateIndex walk every tick — driven
        // through an identical random demand/fault sequence. Every
        // observable must agree exactly: outcomes grant-for-grant, the
        // allocation vector bitwise, and the lease ledgers structurally.
        let mut centers_on = one_center(50, hp);
        let mut centers_off = one_center(50, hp);
        let mut p_on = provisioner(UpdateModel::Quadratic);
        let mut p_off = provisioner(UpdateModel::Quadratic);
        p_off.memo_enabled = false;
        let mut now = SimTime::ZERO;
        let mut players = 800.0;
        let mut replays = 0u32;
        for &(code, value) in &ops {
            match code {
                0..=5 => players = value, // demand move
                6 => {
                    // Center outage: leases revoked on both sides, the
                    // way the engine's fault plane does it.
                    let _ = centers_on[0].fail();
                    let _ = centers_off[0].fail();
                    let _ = p_on.drop_leases_at_center(0);
                    let _ = p_off.drop_leases_at_center(0);
                }
                7 => {
                    centers_on[0].repair();
                    centers_off[0].repair();
                }
                8 => {
                    let frac = (value / 2200.0).clamp(0.05, 1.0);
                    centers_on[0].degrade(frac);
                    centers_off[0].degrade(frac);
                }
                _ => {} // hold demand: the memo's bread and butter
            }
            let t_on = p_on.observe_and_target(players);
            let t_off = p_off.observe_and_target(players);
            prop_assert_eq!(format!("{t_on:?}"), format!("{t_off:?}"));
            let o_on = p_on.adjust(&t_on, &mut centers_on, now);
            let o_off = p_off.adjust(&t_off, &mut centers_off, now);
            prop_assert!(!o_off.replayed, "memo disabled yet replayed");
            replays += u32::from(o_on.replayed);
            // Same outcome, modulo the diagnostic replay flag.
            let normalized = mmog_sim::provision::AdjustOutcome {
                replayed: false,
                ..o_on
            };
            prop_assert_eq!(format!("{normalized:?}"), format!("{o_off:?}"));
            prop_assert_eq!(
                format!("{:?}", p_on.allocated()),
                format!("{:?}", p_off.allocated())
            );
            prop_assert_eq!(
                format!("{:?}", centers_on[0].leases()),
                format!("{:?}", centers_off[0].leases())
            );
            now += SimDuration::TICK;
        }
        // Diagnostic only: a hostile sequence may legitimately never
        // settle into a replayable steady state, so no assertion here —
        // but keep the count observable under --nocapture.
        if replays > 0 {
            println!("memo replayed {replays}/{} steps", ops.len());
        }
    }

    #[test]
    fn metrics_under_is_never_positive_and_events_bounded(
        samples in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..100),
    ) {
        let mut m = MetricsCollector::new();
        for (i, &(alloc, demand)) in samples.iter().enumerate() {
            let a = ResourceVector::new(alloc, 0.0, 0.0, 0.0);
            let d = ResourceVector::new(demand, 0.0, 0.0, 0.0);
            let shortfall = (a - d).min(&ResourceVector::ZERO);
            m.record(SimTime(i as u64), &a, &d, &shortfall, 10.0);
        }
        prop_assert!(m.avg_under(ResourceType::Cpu) <= 1e-12);
        prop_assert!(m.events() <= samples.len() as u64);
        prop_assert_eq!(m.samples(), samples.len() as u64);
        // Cumulative series is monotone and ends at the event count.
        let series = m.cumulative_events();
        for w in series.values().windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
        prop_assert_eq!(*series.values().last().unwrap(), m.events() as f64);
    }

    #[test]
    fn static_sizing_covers_any_load_below_peak(
        peak in 100.0f64..2500.0,
        frac in 0.0f64..=1.0,
    ) {
        for model in UpdateModel::ALL {
            let dm = DemandModel::paper(model);
            let static_alloc = dm.demand(peak);
            let actual = dm.demand(peak * frac);
            prop_assert!(actual.fits_within(&static_alloc, 1e-9), "{model}");
        }
    }
}
