//! Player-count → resource-demand conversion.
//!
//! Sec. V-A fixes the unit system: "The measurement unit for the policy
//! resources is a generic 'unit' which represents the requirement for
//! the respective resource of a fully loaded RuneScape game server",
//! i.e. a server group at its 2 000-player capacity needs 1.0 unit of
//! each resource type. The CPU requirement scales with the update model
//! of Sec. II-A (interactions dominate compute); memory and network
//! scale with the player count (state residency and per-player update
//! streams).

use mmog_datacenter::resource::ResourceVector;
use mmog_world::update::UpdateModel;
use serde::{Deserialize, Serialize};

/// Converts a server group's player count into resource demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandModel {
    /// Players of a fully loaded game server (2 000 for RuneScape).
    pub reference_players: f64,
    /// The interaction/update model driving CPU demand.
    pub update_model: UpdateModel,
    /// Inbound network units at full load (client → server commands are
    /// small; below the outbound unit by design).
    pub in_at_full: f64,
    /// Memory units at full load.
    pub memory_at_full: f64,
}

impl DemandModel {
    /// The paper's configuration for a given update model.
    #[must_use]
    pub fn paper(update_model: UpdateModel) -> Self {
        Self {
            reference_players: 2000.0,
            update_model,
            in_at_full: 1.0,
            memory_at_full: 1.0,
        }
    }

    /// Demand of one server group with `players` concurrent players.
    /// Loads above the reference keep scaling (overfull servers cost
    /// superlinearly under interactive models).
    #[must_use]
    pub fn demand(&self, players: f64) -> ResourceVector {
        let players = players.max(0.0);
        let linear = players / self.reference_players;
        let cpu = self.update_model.cost(players) / self.update_model.cost(self.reference_players);
        ResourceVector::new(
            cpu,
            self.memory_at_full * linear,
            self.in_at_full * linear,
            linear,
        )
    }

    /// Total demand over many groups' player counts.
    #[must_use]
    pub fn demand_total<'a, I: IntoIterator<Item = &'a f64>>(&self, counts: I) -> ResourceVector {
        counts
            .into_iter()
            .fold(ResourceVector::ZERO, |acc, &n| acc + self.demand(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_load_is_one_unit_everywhere() {
        for m in UpdateModel::ALL {
            let d = DemandModel::paper(m).demand(2000.0);
            assert!((d.cpu - 1.0).abs() < 1e-12, "{m}");
            assert!((d.memory - 1.0).abs() < 1e-12);
            assert!((d.ext_net_in - 1.0).abs() < 1e-12);
            assert!((d.ext_net_out - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_players_zero_demand() {
        let d = DemandModel::paper(UpdateModel::Quadratic).demand(0.0);
        assert_eq!(d, ResourceVector::ZERO);
        // Negative clamps.
        let d = DemandModel::paper(UpdateModel::Linear).demand(-10.0);
        assert_eq!(d, ResourceVector::ZERO);
    }

    #[test]
    fn half_load_cpu_depends_on_model() {
        let lin = DemandModel::paper(UpdateModel::Linear).demand(1000.0);
        let quad = DemandModel::paper(UpdateModel::Quadratic).demand(1000.0);
        let cubic = DemandModel::paper(UpdateModel::Cubic).demand(1000.0);
        assert!((lin.cpu - 0.5).abs() < 1e-12);
        assert!((quad.cpu - 0.25).abs() < 1e-12);
        assert!((cubic.cpu - 0.125).abs() < 1e-12);
        // Non-CPU components are model-independent.
        assert_eq!(lin.ext_net_out, quad.ext_net_out);
        assert_eq!(lin.memory, cubic.memory);
    }

    #[test]
    fn interactive_models_amplify_load_swings() {
        // The Figure 9 effect: a 10% player swing around full load moves
        // quadratic CPU demand more than linear CPU demand.
        let swing = |m: UpdateModel| {
            let d = DemandModel::paper(m);
            d.demand(2000.0).cpu - d.demand(1800.0).cpu
        };
        assert!(swing(UpdateModel::Quadratic) > swing(UpdateModel::Linear));
        assert!(swing(UpdateModel::Cubic) > swing(UpdateModel::Quadratic));
    }

    #[test]
    fn overfull_server_costs_more_than_one_unit() {
        let d = DemandModel::paper(UpdateModel::Quadratic).demand(2200.0);
        assert!(d.cpu > 1.0);
        assert!(d.ext_net_out > 1.0);
    }

    #[test]
    fn total_sums_groups() {
        let m = DemandModel::paper(UpdateModel::Linear);
        let counts = [1000.0, 500.0, 2000.0];
        let total = m.demand_total(&counts);
        assert!((total.ext_net_out - (0.5 + 0.25 + 1.0)).abs() < 1e-12);
        assert_eq!(m.demand_total(&[]), ResourceVector::ZERO);
    }
}
