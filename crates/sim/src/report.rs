//! Plain-text rendering of experiment outputs in the paper's format.

use std::fmt::Write as _;

/// Renders an aligned plain-text table. Column widths adapt to content;
/// headers are underlined with dashes.
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:<w$}  ");
    }
    out.push_str(line.trim_end());
    out.push('\n');
    let dash: String = widths
        .iter()
        .map(|w| "-".repeat(*w))
        .collect::<Vec<_>>()
        .join("  ");
    out.push_str(&dash);
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map_or("", String::as_str);
            let _ = write!(line, "{cell:<w$}  ");
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Formats a percentage with two decimals (the paper's table style).
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a signed small percentage with two decimals (e.g. `-0.09`).
#[must_use]
pub fn signed_pct(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else {
        format!("{x:.2}")
    }
}

/// Downsamples an `(index, value)` series to at most `points` rows for
/// compact textual "figures".
#[must_use]
pub fn sparse_series(values: &[f64], points: usize) -> Vec<(usize, f64)> {
    if values.is_empty() || points == 0 {
        return Vec::new();
    }
    let step = (values.len() / points.max(1)).max(1);
    values
        .iter()
        .enumerate()
        .step_by(step)
        .map(|(i, &v)| (i, v))
        .collect()
}

/// Renders a crude horizontal bar for textual figures (one `#` per
/// `unit`, capped at 80 characters).
#[must_use]
pub fn bar(value: f64, unit: f64) -> String {
    if unit <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / unit).round() as usize).min(80);
    "#".repeat(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let s = render_table(
            &["Name", "Value"],
            &[
                vec!["short".into(), "1".into()],
                vec!["a-much-longer-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Name"));
        assert!(lines[1].starts_with("---"));
        // The value column starts at the same offset in both data rows.
        let off2 = lines[2].find('1').unwrap();
        let off3 = lines[3].find("22").unwrap();
        assert_eq!(off2, off3);
    }

    #[test]
    fn table_handles_missing_cells() {
        let s = render_table(&["A", "B"], &[vec!["x".into()]]);
        assert!(s.contains('x'));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(25.904), "25.90");
        assert_eq!(signed_pct(-0.094), "-0.09");
        assert_eq!(signed_pct(0.0), "0");
    }

    #[test]
    fn sparse_series_downsamples() {
        let values: Vec<f64> = (0..100).map(f64::from).collect();
        let s = sparse_series(&values, 10);
        assert!(s.len() >= 10 && s.len() <= 11);
        assert_eq!(s[0], (0, 0.0));
        assert!(sparse_series(&[], 10).is_empty());
        assert!(sparse_series(&values, 0).is_empty());
        // More points than values: every value returned.
        assert_eq!(sparse_series(&[1.0, 2.0], 10).len(), 2);
    }

    #[test]
    fn bar_caps_and_clamps() {
        assert_eq!(bar(5.0, 1.0), "#####");
        assert_eq!(bar(1000.0, 1.0).len(), 80);
        assert_eq!(bar(-3.0, 1.0), "");
        assert_eq!(bar(3.0, 0.0), "");
    }
}
