//! The trace-driven simulation engine.
//!
//! Binds everything together per the Section V protocol: every two
//! simulated minutes each game operator observes the per-server-group
//! player counts from the input trace, predicts the next step, converts
//! the prediction into resource demand, and adjusts its leases through
//! the request–offer matching mechanism; the collector then scores
//! allocation against the *actual* demand (Equations 1–2).

use crate::demand::DemandModel;
use crate::metrics::MetricsCollector;
use crate::provision::{GroupProvisioner, ReleaseCause, RetryPolicy};
use mmog_datacenter::center::DataCenter;
use mmog_datacenter::matching::RejectionTotals;
use mmog_datacenter::request::OperatorId;
use mmog_datacenter::resource::ResourceVector;
use mmog_datacenter::topology::Topology;
use mmog_faults::{FaultKind, FaultSchedule, ScenarioEventKind, ScenarioTimeline};
use mmog_obs::{Domain, EventSink, FlightRecorder, FlightTrigger};
use mmog_predict::eval::PredictorKind;
use mmog_util::geo::{DistanceClass, GeoPoint};
use mmog_util::series::TimeSeries;
use mmog_util::time::{SimTime, TICKS_PER_DAY};
use mmog_workload::runescape::RuneScapeConfig;
use mmog_workload::stream::StreamingTrace;
use mmog_workload::trace::GameTrace;
use mmog_world::update::UpdateModel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How resources are provisioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocationMode {
    /// Prediction-driven adjustment every two minutes.
    Dynamic,
    /// One peak-sized allocation at the start, never adjusted — "the
    /// current industry practice" the paper argues against.
    Static,
}

/// A game's player-count workload: a fully materialized trace, or a
/// generator configuration the engine expands tick by tick in O(1)
/// memory per group. The two forms are byte-identical for the same
/// configuration (see [`mmog_workload::stream`]); streaming is what
/// makes thousand-group / million-player runs representable at all.
#[derive(Debug, Clone)]
pub enum GameWorkload {
    /// Materialized per-group series (the paper-scale default).
    Trace(GameTrace),
    /// Streamed from the RuneScape-like generator during the run; no
    /// full-length series is ever held in memory.
    Streaming(RuneScapeConfig),
}

impl GameWorkload {
    /// Number of server groups this workload drives, without
    /// materialising anything.
    #[must_use]
    pub fn group_count(&self) -> usize {
        match self {
            Self::Trace(trace) => trace.total_groups(),
            Self::Streaming(cfg) => cfg.regions.iter().map(|r| r.groups as usize).sum(),
        }
    }
}

impl From<GameTrace> for GameWorkload {
    fn from(trace: GameTrace) -> Self {
        Self::Trace(trace)
    }
}

impl From<RuneScapeConfig> for GameWorkload {
    fn from(cfg: RuneScapeConfig) -> Self {
        Self::Streaming(cfg)
    }
}

/// One MMOG handled by the ecosystem.
#[derive(Debug, Clone)]
pub struct GameSpec {
    /// Display name.
    pub name: String,
    /// Base operator id; each region of the trace gets `base + region`.
    pub operator_base: u32,
    /// The game's interaction/update model (Sec. V-C axis).
    pub update_model: UpdateModel,
    /// Latency tolerance (Sec. V-E axis).
    pub tolerance: DistanceClass,
    /// Demand headroom multiplier (1.0 = allocate the prediction).
    pub headroom: f64,
    /// The load predictor (Sec. V-B axis).
    pub predictor: PredictorKind,
    /// The player-count workload.
    pub workload: GameWorkload,
    /// Per-group peak players used by static provisioning.
    pub static_peak_players: f64,
    /// Request priority (lower = served first each tick). The paper's
    /// future work proposes "prioritizing the resource requests
    /// according to the interaction type of the MMOG"; this knob
    /// implements it. Ties process in insertion order.
    pub priority: i32,
}

/// Full simulation configuration.
#[derive(Debug)]
pub struct SimulationConfig {
    /// The hosting platform.
    pub centers: Vec<DataCenter>,
    /// The games sharing it.
    pub games: Vec<GameSpec>,
    /// Provisioning mode (applies to every game).
    pub mode: AllocationMode,
    /// Ticks to simulate (`None` = shortest trace length).
    pub ticks: Option<usize>,
    /// Leading ticks excluded from the metrics (provisioning warm-up;
    /// the paper's two-week averages are insensitive to the first hour).
    pub warmup_ticks: usize,
    /// Ticks of each group's history used as the neural predictor's
    /// offline data-collection phase.
    pub train_ticks: usize,
    /// Master seed for the per-group random streams (each group trains
    /// its predictor from stream `i` of this seed, so results are
    /// bit-identical no matter how many threads build or run the
    /// simulation).
    pub master_seed: u64,
    /// Fault-injection schedule. `None` (the default everywhere)
    /// reproduces the unfaulted simulation byte-for-byte: no retry
    /// policy is installed, no fault counters are registered, and the
    /// trace label is unchanged. `Some` plays the schedule's timed
    /// events — outages, degradations, lease revocations, predictor
    /// dropouts — from the engine's serial section at the start of each
    /// tick, so fault runs stay deterministic for any `--jobs`.
    pub faults: Option<FaultSchedule>,
    /// Scenario timeline: topology mutations (partitions, link
    /// degradation), zone migrations, region failovers and flash
    /// crowds. `None` (the default everywhere) reproduces the
    /// scenario-free simulation byte-for-byte — no topology is
    /// installed and the matcher takes its original code path. `Some`
    /// plays the timeline from the engine's serial sections, composing
    /// freely with a fault schedule.
    pub scenario: Option<ScenarioTimeline>,
}

/// Per-center usage integrated over the simulation (the Figures 13–14
/// raw data). "Unit-ticks" are resource-units held × 2-minute ticks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CenterUsage {
    /// Center name.
    pub name: String,
    /// Center CPU capacity, units.
    pub capacity_cpu: f64,
    /// CPU unit-ticks held, per operator id.
    pub cpu_by_operator: BTreeMap<u32, f64>,
    /// Total CPU unit-ticks held.
    pub cpu_total: f64,
    /// Free CPU unit-ticks.
    pub cpu_free: f64,
}

/// Per-game metric breakdown.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GameMetrics {
    /// The game's display name.
    pub name: String,
    /// Ω/Υ/event metrics for this game's groups only. M of Eq. 2 is the
    /// game's own group count.
    pub metrics: MetricsCollector,
}

/// What a simulation run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Aggregate Ω/Υ/event metrics.
    pub metrics: MetricsCollector,
    /// Per-game breakdown (same order as the configuration's games).
    pub per_game: Vec<GameMetrics>,
    /// Per-center usage attribution.
    pub center_usage: Vec<CenterUsage>,
    /// Operator id → (region name, origin) for usage attribution.
    pub operator_origins: BTreeMap<u32, (String, GeoPoint)>,
    /// Aggregate demand (CPU) over time, for plotting.
    pub demand_cpu_series: TimeSeries,
    /// Aggregate allocation (CPU) over time.
    pub alloc_cpu_series: TimeSeries,
    /// Number of adjustment steps whose request was partially unmet.
    pub unmet_steps: u64,
    /// Ticks simulated (after warm-up exclusion they are all scored).
    pub ticks: usize,
    /// Matcher rejections aggregated over every adjustment step of the
    /// run, by reason.
    pub rejections: RejectionTotals,
    /// Σ over all ticks of players × (CPU shortfall fraction): the
    /// player-ticks the platform failed to serve. Zero in a healthy run.
    pub unserved_player_ticks: f64,
    /// Time-to-recover, in ticks, for each outage episode that healed:
    /// from the tick the center went down to the first tick with no
    /// unserved players anywhere.
    pub recovery_ticks: Vec<u64>,
    /// Outage episodes still unhealed when the run ended.
    pub unrecovered_outages: usize,
    /// Fault events applied during the run.
    pub fault_events: u64,
    /// Leases lost to outages and spontaneous revocations.
    pub leases_revoked: u64,
    /// Leases granted while re-acquiring fault-lost capacity.
    pub reprovisions: u64,
    /// Scenario events applied during the run (partitions, heals, link
    /// changes, migrations, failover drains, flash crowds).
    pub scenario_events: u64,
    /// Zone migrations executed: explicit `Migrate` events that found
    /// leases to move, plus one per group drained by a region failover.
    pub migrations: u64,
    /// Σ players × migration-cost ticks charged by migrations. Also
    /// included in `unserved_player_ticks` (migration is player-visible
    /// downtime); this field isolates the migration share.
    pub migration_player_ticks: f64,
    /// The flight-recorder dump this run produced, if flight recording
    /// was configured and a trigger fired. `None` on every un-configured
    /// run, so baseline reports are unaffected.
    pub flight_dump: Option<FlightDumpReport>,
}

/// Mirror of [`mmog_obs::FlightDumpInfo`] carried in the report so
/// harnesses can assert on trigger decisions without re-reading the
/// artifact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightDumpReport {
    /// What fired the dump (`fault`, `partition`, `migration`,
    /// `deadline_overrun`, `gate_breach`, `explicit`).
    pub trigger: String,
    /// Tick the trigger fired on.
    pub trigger_tick: u64,
    /// Oldest tick in the dumped window.
    pub tick_from: u64,
    /// Newest tick in the dumped window.
    pub tick_to: u64,
    /// Event records dumped (excluding the meta line).
    pub records: u64,
    /// Artifact path.
    pub path: String,
}

/// A group's hot per-tick state, split struct-of-arrays style out of
/// [`GroupRuntime`]: every field here is read or written by every tick,
/// so the engine keeps one contiguous `Vec<GroupHot>` that the
/// fan-out writes and the ordered reduction scans — a linear walk over
/// packed 80-byte records instead of chasing provisioner-sized structs.
/// Folding happens serially in group-index order, which keeps aggregates
/// bit-identical for any thread count.
#[derive(Debug, Clone, Copy)]
struct GroupHot {
    /// This tick's observed player count, filled from the group's
    /// workload source before the fan-out.
    players: f64,
    demand: ResourceVector,
    alloc: ResourceVector,
    short: ResourceVector,
    target: ResourceVector,
    /// Σ|predicted − actual| players over scored ticks (the paper's
    /// un-normalized sample prediction error, accumulated online).
    abs_err_sum: f64,
    /// Σ actual players over the same ticks (the metric's denominator).
    actual_sum: f64,
}

impl GroupHot {
    const ZERO: Self = Self {
        players: 0.0,
        demand: ResourceVector::ZERO,
        alloc: ResourceVector::ZERO,
        short: ResourceVector::ZERO,
        target: ResourceVector::ZERO,
        abs_err_sum: 0.0,
        actual_sum: 0.0,
    };
}

/// A group's cold state: touched once per tick at most (the provisioner
/// during predict/settle), never scanned by the reduction.
struct GroupRuntime {
    provisioner: GroupProvisioner,
    demand_model: DemandModel,
    /// Index into the configuration's game list.
    game: usize,
}

/// Where one game's per-tick player counts come from. Each source
/// covers a contiguous range of global group indices starting at
/// `start` (games are enumerated in configuration order).
enum WorkloadSource {
    /// Materialized series, one per group, indexed by tick.
    Materialized {
        start: usize,
        series: Vec<TimeSeries>,
    },
    /// Lazily generated; `next_tick` yields each tick's counts in O(1)
    /// memory per group.
    Streaming {
        start: usize,
        stream: StreamingTrace,
    },
}

/// Below this many server groups a per-tick fan-out costs more in
/// barrier traffic than it saves; the engine stays serial.
const PARALLEL_GROUP_THRESHOLD: usize = 8;

/// Emits the `provision` event for one adjustment step that changed
/// anything, plus one `match_reject` event per center the matcher
/// considered and rejected when part of the request went unmet. The
/// same step also lands in the flight ring (when a recorder is active)
/// so a triggered dump carries provisioning detail even when the full
/// trace is off.
///
/// On traced runs the step's causal lease-lifecycle chain rides along,
/// in the order the provisioner performed it: maturities observed this
/// tick, releases (with cause), then the request and the grants that
/// answered it. Grants carry the request id, so the analyzer can
/// reconstruct every lease's waterfall without guessing.
fn emit_adjust_events(
    sink: Option<&mut EventSink>,
    flight: Option<&mut FlightRecorder>,
    tick: usize,
    provisioner: &GroupProvisioner,
    target: &ResourceVector,
    out: &crate::provision::AdjustOutcome,
) {
    let detail = provisioner.lifecycle_detail();
    let changed = out.granted > 0 || out.released > 0 || out.unmet;
    if !changed && detail.is_empty() {
        return;
    }
    if changed {
        if let Some(flight) = flight {
            flight.push(
                "provision",
                tick as u64,
                &[
                    f64::from(provisioner.operator.0),
                    out.granted as f64,
                    out.released as f64,
                    if out.unmet { 1.0 } else { 0.0 },
                    target.cpu,
                    provisioner.allocated().cpu,
                ],
            );
        }
    }
    let Some(sink) = sink else { return };
    let op = provisioner.operator.0;
    for &(center, lease_id) in &detail.matured {
        sink.emit(
            "lease_mature",
            &[
                ("tick", tick.into()),
                ("center", center.into()),
                ("lease", lease_id.0.into()),
                ("operator", op.into()),
            ],
        );
    }
    for (center, lease, cause) in &detail.releases {
        sink.emit(
            "lease_release",
            &[
                ("tick", tick.into()),
                ("center", (*center).into()),
                ("lease", lease.id.0.into()),
                ("operator", op.into()),
                ("cpu", lease.amounts.cpu.into()),
                ("cause", cause.label().into()),
            ],
        );
    }
    if let Some((request, cpu)) = detail.request {
        sink.emit(
            "lease_request",
            &[
                ("tick", tick.into()),
                ("request", request.into()),
                ("group", (request >> 32).into()),
                ("operator", op.into()),
                ("cpu", cpu.into()),
            ],
        );
        for (center, lease) in &detail.grants {
            sink.emit(
                "lease_grant",
                &[
                    ("tick", tick.into()),
                    ("request", request.into()),
                    ("center", (*center).into()),
                    ("lease", lease.id.0.into()),
                    ("operator", op.into()),
                    ("cpu", lease.amounts.cpu.into()),
                ],
            );
        }
    }
    if !changed {
        return;
    }
    sink.emit(
        "provision",
        &[
            ("tick", tick.into()),
            ("operator", provisioner.operator.0.into()),
            ("granted", out.granted.into()),
            ("released", out.released.into()),
            ("unmet", out.unmet.into()),
            ("target_cpu", target.cpu.into()),
            ("alloc_cpu", provisioner.allocated().cpu.into()),
        ],
    );
    if out.unmet {
        if let Some(matched) = provisioner.last_match() {
            for r in &matched.rejections {
                sink.emit(
                    "match_reject",
                    &[
                        ("tick", tick.into()),
                        ("operator", provisioner.operator.0.into()),
                        ("center", r.center_index.into()),
                        ("reason", r.reason.label().into()),
                    ],
                );
            }
        }
    }
}

/// The simulation itself.
pub struct Simulation {
    centers: Vec<DataCenter>,
    groups: Vec<GroupRuntime>,
    /// Hot per-group state, one contiguous array (SoA split of the
    /// group runtimes); indexed like `groups`.
    hot: Vec<GroupHot>,
    /// Per-game player-count sources, contiguous over group indices.
    sources: Vec<WorkloadSource>,
    /// Scratch for streaming sources' per-tick output (sized once to
    /// the widest streaming game, so the tick loop never allocates).
    players_scratch: Vec<f64>,
    mode: AllocationMode,
    ticks: usize,
    warmup: usize,
    operator_origins: BTreeMap<u32, (String, GeoPoint)>,
    static_targets: Vec<ResourceVector>,
    game_names: Vec<String>,
    /// Group indices in request-processing order (by game priority).
    processing_order: Vec<usize>,
    /// Deterministic configuration-derived label the run's trace chunk
    /// is submitted under.
    trace_label: String,
    /// Fault schedule, consumed by [`run`](Self::run).
    faults: Option<FaultSchedule>,
    /// Scenario timeline, consumed by [`run`](Self::run).
    scenario: Option<ScenarioTimeline>,
    /// Each group's region id (regions are enumerated in configuration
    /// order across games); flash crowds resolve against this table.
    region_ids: Vec<u32>,
    /// Groups per region id, for the `flash_crowd` event payload.
    region_group_counts: Vec<u64>,
}

impl Simulation {
    /// Builds the runtime from a configuration.
    ///
    /// # Panics
    /// Panics when a game's trace is empty.
    #[must_use]
    pub fn new(cfg: SimulationConfig) -> Self {
        let _span = mmog_obs::span("sim/build");
        // Pass 1 (serial): enumerate groups in configuration order and
        // collect everything each one needs. The group index assigned
        // here also names the group's random stream, so it must not
        // depend on scheduling.
        struct GroupSpec {
            game: usize,
            operator: OperatorId,
            origin: GeoPoint,
            /// Materialized series (empty for streaming groups; moved
            /// into the game's [`WorkloadSource`] after training).
            series: TimeSeries,
            /// Streaming groups' training prefix (`None` ⇒ slice
            /// `series[..train_end]`).
            stream_train: Option<Vec<f64>>,
            train_end: usize,
            seed: u64,
        }
        let mut specs: Vec<GroupSpec> = Vec::new();
        let mut operator_origins = BTreeMap::new();
        let mut static_targets = Vec::new();
        let mut min_len = usize::MAX;
        // Region enumeration for the scenario plane: each (game, region)
        // gets the next id, each group records its region's id. Pure
        // configuration order, so flash-crowd targeting is
        // jobs-independent.
        let mut region_ids: Vec<u32> = Vec::new();
        let mut next_region = 0u32;
        for (game_idx, game) in cfg.games.iter().enumerate() {
            let demand_model = DemandModel::paper(game.update_model);
            match &game.workload {
                GameWorkload::Trace(trace) => {
                    for region in &trace.regions {
                        let operator = OperatorId(game.operator_base + u32::from(region.region.0));
                        let origin = crate::scenario::region_origin(&region.name);
                        operator_origins.insert(operator.0, (region.name.clone(), origin));
                        let rid = next_region;
                        next_region += 1;
                        for group in &region.groups {
                            region_ids.push(rid);
                            assert!(!group.series.is_empty(), "empty trace for {}", region.name);
                            min_len = min_len.min(group.series.len());
                            static_targets.push(
                                demand_model.demand(game.static_peak_players) * game.headroom,
                            );
                            specs.push(GroupSpec {
                                game: game_idx,
                                operator,
                                origin,
                                series: group.series.clone(),
                                stream_train: None,
                                train_end: cfg.train_ticks.min(group.series.len()),
                                seed: mmog_util::rng::stream_seed(
                                    cfg.master_seed,
                                    specs.len() as u64,
                                ),
                            });
                        }
                    }
                }
                GameWorkload::Streaming(rs) => {
                    let ticks = (rs.days * TICKS_PER_DAY) as usize;
                    assert!(ticks > 0, "empty streaming workload for {}", game.name);
                    min_len = min_len.min(ticks);
                    let train_end = cfg.train_ticks.min(ticks);
                    let first_spec = specs.len();
                    for (ri, region) in rs.regions.iter().enumerate() {
                        let operator = OperatorId(game.operator_base + ri as u32);
                        let origin = crate::scenario::region_origin(&region.name);
                        operator_origins.insert(operator.0, (region.name.clone(), origin));
                        let rid = next_region;
                        next_region += 1;
                        for _ in 0..region.groups {
                            region_ids.push(rid);
                            static_targets.push(
                                demand_model.demand(game.static_peak_players) * game.headroom,
                            );
                            specs.push(GroupSpec {
                                game: game_idx,
                                operator,
                                origin,
                                series: TimeSeries::new(),
                                stream_train: (train_end > 0).then(Vec::new),
                                train_end,
                                seed: mmog_util::rng::stream_seed(
                                    cfg.master_seed,
                                    specs.len() as u64,
                                ),
                            });
                        }
                    }
                    // Predictor training needs each group's leading
                    // `train_end` ticks: stream exactly that prefix into
                    // per-group buffers (the run itself re-streams from
                    // tick 0 on a fresh, identical source). This is the
                    // only trace-length-proportional memory a streaming
                    // game ever holds, and only when training is on.
                    if train_end > 0 {
                        let mut stream = StreamingTrace::new(rs);
                        let mut row = vec![0.0f64; stream.group_count()];
                        for spec in &mut specs[first_spec..] {
                            if let Some(train) = spec.stream_train.as_mut() {
                                train.reserve_exact(train_end);
                            }
                        }
                        for _ in 0..train_end {
                            assert!(stream.next_tick(&mut row), "prefix within trace length");
                            for (spec, &v) in specs[first_spec..].iter_mut().zip(&row) {
                                spec.stream_train
                                    .as_mut()
                                    .expect("train_end > 0 allocates prefixes")
                                    .push(v);
                            }
                        }
                    }
                }
            }
        }
        // Pass 2 (parallel): the offline phase. Training one MLP per
        // server group dominates construction cost; each group's
        // training is self-contained (own series slice, own seed), so
        // the fan-out is embarrassingly parallel and order-preserving.
        let train_span = mmog_obs::span("sim/build/train");
        let record_matches = mmog_obs::trace_enabled();
        // Self-healing re-provisioning only backs off under fault or
        // scenario injection; the undisturbed baseline keeps its
        // request-every-tick behaviour bit-for-bit.
        let retry = (cfg.faults.is_some() || cfg.scenario.is_some()).then(RetryPolicy::default);
        let mut groups: Vec<GroupRuntime> = mmog_par::par_map(&specs, |spec| {
            let game = &cfg.games[spec.game];
            let demand_model = DemandModel::paper(game.update_model);
            let history: &[f64] = match &spec.stream_train {
                Some(prefix) => prefix,
                None => &spec.series.values()[..spec.train_end],
            };
            let predictor = game.predictor.build_seeded(history, spec.seed);
            let mut provisioner = GroupProvisioner::new(
                spec.operator,
                spec.origin,
                game.tolerance,
                demand_model,
                game.headroom,
                predictor,
            );
            provisioner.record_matches = record_matches;
            provisioner.retry = retry;
            GroupRuntime {
                provisioner,
                demand_model,
                game: spec.game,
            }
        });
        drop(train_span);
        // Causal-group ids: the group index names each group's request-id
        // stream (`request = group << 32 | seq`), so it is assigned in
        // configuration order by a post-pass (`par_map` is
        // order-preserving but its closure never sees the index).
        for (gi, group) in groups.iter_mut().enumerate() {
            group.provisioner.set_causal_group(gi as u64);
        }
        // The specs' materialized series become the run's per-tick
        // sources (moved, not cloned a second time); streaming games
        // get a fresh source that replays from tick 0.
        let mut sources = Vec::with_capacity(cfg.games.len());
        let mut players_scratch_len = 0usize;
        {
            let mut spec_iter = specs.into_iter();
            let mut start = 0usize;
            for game in &cfg.games {
                match &game.workload {
                    GameWorkload::Trace(trace) => {
                        let n = trace.total_groups();
                        let series: Vec<TimeSeries> =
                            spec_iter.by_ref().take(n).map(|s| s.series).collect();
                        sources.push(WorkloadSource::Materialized { start, series });
                        start += n;
                    }
                    GameWorkload::Streaming(rs) => {
                        let stream = StreamingTrace::new(rs);
                        let n = stream.group_count();
                        spec_iter.by_ref().take(n).for_each(drop);
                        players_scratch_len = players_scratch_len.max(n);
                        sources.push(WorkloadSource::Streaming { start, stream });
                        start += n;
                    }
                }
            }
        }
        mmog_obs::counter("sim.groups", Domain::Semantic).add(groups.len() as u64);
        mmog_obs::gauge("sim.groups_max", Domain::Semantic).set_max(groups.len() as i64);
        assert!(
            !groups.is_empty(),
            "simulation needs at least one server group"
        );
        let ticks = cfg.ticks.unwrap_or(min_len).min(min_len);
        // Stable sort keeps insertion order among equal priorities.
        let mut processing_order: Vec<usize> = (0..groups.len()).collect();
        processing_order.sort_by_key(|&gi| cfg.games[groups[gi].game].priority);
        // The label identifies the run by configuration alone, so
        // identical configs produce identical chunks and the trace file
        // sorts deterministically regardless of completion order.
        let game_tags: Vec<String> = cfg
            .games
            .iter()
            .map(|g| format!("{}:{}:p{}", g.name, g.predictor.label(), g.priority))
            .collect();
        let mut trace_label = format!(
            "sim mode={:?} seed={} ticks={} warmup={} centers={} games=[{}]",
            cfg.mode,
            cfg.master_seed,
            ticks,
            cfg.warmup_ticks,
            cfg.centers.len(),
            game_tags.join(",")
        );
        // Faulted runs label their chunks distinctly so they never
        // collide with (or perturb) an unfaulted run's chunk.
        if let Some(faults) = &cfg.faults {
            trace_label.push_str(" faults=[");
            trace_label.push_str(faults.label());
            trace_label.push(']');
        }
        // Scenario runs likewise label their chunks distinctly.
        if let Some(scenario) = &cfg.scenario {
            trace_label.push_str(" scenario=[");
            trace_label.push_str(scenario.label());
            trace_label.push(']');
        }
        let mut region_group_counts = vec![0u64; next_region as usize];
        for &rid in &region_ids {
            region_group_counts[rid as usize] += 1;
        }
        Self {
            centers: cfg.centers,
            hot: vec![GroupHot::ZERO; groups.len()],
            players_scratch: vec![0.0; players_scratch_len],
            sources,
            groups,
            mode: cfg.mode,
            ticks,
            warmup: cfg.warmup_ticks.min(ticks),
            operator_origins,
            static_targets,
            game_names: cfg.games.iter().map(|g| g.name.clone()).collect(),
            processing_order,
            trace_label,
            faults: cfg.faults,
            scenario: cfg.scenario,
            region_ids,
            region_group_counts,
        }
    }

    /// Runs the simulation to completion.
    #[must_use]
    pub fn run(mut self) -> SimReport {
        let _run_span = mmog_obs::span("sim/run");
        mmog_obs::counter("sim.runs", Domain::Semantic).incr();
        mmog_obs::counter("sim.ticks", Domain::Semantic).add(self.ticks as u64);
        // Event emission happens exclusively from this method's serial
        // sections, so within-run order is program order (the event-log
        // determinism contract).
        let mut sink = EventSink::if_enabled();
        if let Some(sink) = sink.as_mut() {
            sink.emit(
                "run_start",
                &[
                    (
                        "mode",
                        if self.mode == AllocationMode::Dynamic {
                            "dynamic"
                        } else {
                            "static"
                        }
                        .into(),
                    ),
                    ("groups", self.groups.len().into()),
                    ("centers", self.centers.len().into()),
                    ("ticks", self.ticks.into()),
                    ("warmup", self.warmup.into()),
                ],
            );
        }
        let mut metrics = MetricsCollector::new();
        // M of Eq. 2: one machine-equivalent per server group (a group
        // at full load is exactly one game server, Sec. V-A).
        let machines = self.groups.len() as f64;
        let game_count = self.game_names.len();
        let mut game_metrics: Vec<MetricsCollector> =
            (0..game_count).map(|_| MetricsCollector::new()).collect();
        let mut game_machines = vec![0.0f64; game_count];
        for group in &self.groups {
            game_machines[group.game] += 1.0;
        }
        let mut demand_cpu_series = TimeSeries::with_capacity(self.ticks);
        let mut alloc_cpu_series = TimeSeries::with_capacity(self.ticks);
        let mut unmet_steps = 0u64;
        let mut leases_granted = 0u64;
        let mut leases_released = 0u64;
        let mut rejections = RejectionTotals::default();
        // Fault plane: the schedule's events apply from this method's
        // serial sections only, so fault runs inherit the engine's
        // any-thread-count determinism. With no schedule every branch
        // below is dead and the run is byte-identical to the baseline.
        let schedule = self.faults.take();
        let faults_active = schedule.is_some();
        let fault_queue = schedule.as_ref().map_or(&[][..], |s| s.events());
        let mut fault_cursor = 0usize;
        let mut fault_event_count = 0u64;
        // Scenario plane: like the fault plane, the timeline's events
        // apply from serial sections only. With no timeline the
        // topology is never built, every branch below is dead, and the
        // matcher takes its original (topology-free) code path — the
        // run is byte-identical to the scenario-free baseline.
        let scenario = self.scenario.take();
        let scenario_active = scenario.is_some();
        let scenario_queue = scenario.as_ref().map_or(&[][..], |s| s.events());
        let migration_cost = scenario
            .as_ref()
            .map_or(0, ScenarioTimeline::migration_cost_ticks);
        let mut scenario_cursor = 0usize;
        let mut scenario_event_count = 0u64;
        let mut migrations = 0u64;
        let mut migration_player_ticks = 0.0f64;
        let mut topology = scenario_active.then(|| Topology::new(self.centers.len()));
        // Per-region flash-crowd demand multipliers (1.0 = nominal).
        let n_regions = self.region_group_counts.len();
        let mut region_flash = vec![1.0f64; n_regions.max(1)];
        let mut flashes_active = 0usize;
        let mut leases_revoked = 0u64;
        let mut reprovisions = 0u64;
        let mut unserved_player_ticks = 0.0f64;
        // Open outage episodes as (center, start tick); an episode
        // closes at the first tick the whole platform serves every
        // player again.
        let mut open_outages: Vec<(usize, u64)> = Vec::new();
        let mut recovery_ticks: Vec<u64> = Vec::new();
        // Center usage accumulators, slot-indexed by operator. The
        // operator set is fixed at construction, so the per-tick
        // attribution loop indexes a flat array instead of paying a map
        // lookup per lease; slots stay in ascending-id order so the
        // final per-operator maps render identically to the old
        // `BTreeMap` accumulation (same per-lease addition order, same
        // iteration order).
        let mut op_ids: Vec<u32> = self
            .groups
            .iter()
            .map(|g| g.provisioner.operator.0)
            .collect();
        op_ids.sort_unstable();
        op_ids.dedup();
        // Direct operator-id → slot table: the usage walk does one
        // indexed load per lease instead of a binary search. Ids are
        // small dense integers, so the table stays tiny.
        let max_op = op_ids.last().copied().unwrap_or(0) as usize;
        let mut op_slot: Vec<u32> = vec![u32::MAX; max_op + 1];
        for (slot, &op) in op_ids.iter().enumerate() {
            op_slot[op as usize] = slot as u32;
        }
        // (per-slot cpu sum, per-slot touched flag, free-cpu sum).
        let mut usage: Vec<(Vec<f64>, Vec<bool>, f64)> =
            vec![(vec![0.0; op_ids.len()], vec![false; op_ids.len()], 0.0); self.centers.len()];
        // Stride for per-center `center_tick` trace samples: at most
        // ~96 sampled ticks per run regardless of scale, derived from
        // the configuration so it is jobs-independent.
        let center_tick_stride = (self.ticks / 96).max(1);

        // Flight recorder: per-run ring, fed from the serial sections
        // only; `None` (no process-global config) costs one branch per
        // push site and changes nothing else.
        let mut flight = mmog_obs::flight_recorder();

        // Time-series plane: fixed-memory ring series per metric,
        // sampled once per tick from the serial tail. Downsampling is a
        // pure function of the sample sequence, so the semantic series
        // are byte-identical across `--jobs`. `None` (no output
        // directory) costs one branch per tick and changes nothing.
        let mut ts = mmog_obs::ts_enabled()
            .then(|| mmog_obs::timeseries::TimeSeries::new(mmog_obs::TS_DEFAULT_CAPACITY));
        let mut ts_samples = 0u64;
        // Live telemetry tap: atomically rewritten snapshot, built from
        // serial state only so the semantic half is jobs-independent.
        // On top of the tick interval, writes are wall-clock throttled:
        // a dashboard cannot use more than a few frames per second, and
        // each atomic publish costs two filesystem syscalls — without
        // the throttle, fast runs spend percent-level wall on the tap.
        // The throttle is pure timing (which ticks get published);
        // nothing semantic flows back into the run, and the final
        // `done` snapshot is always written.
        let live = mmog_obs::live_config();
        let live_interval = live.as_ref().map_or(1, mmog_obs::LiveConfig::interval);
        const MIN_LIVE_WRITE_GAP: std::time::Duration = std::time::Duration::from_millis(250);
        let mut last_live_write: Option<std::time::Instant> = None;
        let mut live_writes = 0u64;
        let mut live_write_ns = 0u64;
        let run_start_wall = std::time::Instant::now();

        // Static mode: one up-front allocation per group.
        if self.mode == AllocationMode::Static {
            for (gi, group) in self.groups.iter_mut().enumerate() {
                let target = self.static_targets[gi];
                let out = group.provisioner.adjust_via(
                    topology.as_ref(),
                    &target,
                    &mut self.centers,
                    SimTime::ZERO,
                );
                leases_granted += out.granted as u64;
                leases_released += out.released as u64;
                rejections.merge(&out.rejections);
                if out.unmet {
                    unmet_steps += 1;
                }
                emit_adjust_events(
                    sink.as_mut(),
                    flight.as_mut(),
                    0,
                    &group.provisioner,
                    &target,
                    &out,
                );
            }
        }

        // Per-tick fan-out pool: scoring and observe→predict→target are
        // independent per group, so they fan out across a persistent
        // pool (spawning scoped threads every two-minute tick would
        // cost more than the work). Request–offer matching afterwards
        // mutates the shared data centers and stays serial. Nested
        // parallel regions (e.g. a sweep already running experiments in
        // parallel) fall back to serial automatically.
        let pool = (mmog_par::jobs() > 1
            && !mmog_par::in_parallel()
            && self.groups.len() >= PARALLEL_GROUP_THRESHOLD)
            .then(mmog_par::Pool::with_global_jobs);

        // Per-stage timers, interned once: the pipeline's timing tree.
        let t_predict = mmog_obs::timer("sim/run/predict_score");
        let t_reduce = mmog_obs::timer("sim/run/reduce");
        let t_settle = mmog_obs::timer("sim/run/match_settle");
        // Per-stage latency distributions (log-bucketed): span totals
        // give means, these give the tail. Same paths as the timers so
        // reports line up. All of it is timing-domain data.
        let l_predict = mmog_obs::latency("sim/run/predict_score");
        let l_reduce = mmog_obs::latency("sim/run/reduce");
        let l_settle = mmog_obs::latency("sim/run/match_settle");
        // Ticks where every group replayed its no-op memo: the settle
        // stage's fast-path distribution, recorded alongside (not
        // instead of) match_settle so the slow path's tail stays
        // comparable against old baselines.
        let l_skip = mmog_obs::latency("sim/run/match_skip");
        let l_tick = mmog_obs::latency("sim/run/tick");
        // Memo hit accounting. Timing domain on purpose: the memo keys
        // on the process-global availability epoch, so parallel faulted
        // experiments interleave epoch bumps differently across --jobs
        // and the split between skipped and full walks is not
        // jobs-stable. The grants themselves are (replay is an exact
        // no-op); only this diagnostic split varies, so it lives with
        // the other masked timing data.
        let c_skips = mmog_obs::counter("sim.match.skips", mmog_obs::Domain::Timing);
        let c_full = mmog_obs::counter("sim.match.full", mmog_obs::Domain::Timing);
        let ns_since = |start: std::time::Instant| {
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        };
        // Per-game reduction scratch, recycled tick to tick.
        let mut per_game = vec![
            (
                ResourceVector::ZERO,
                ResourceVector::ZERO,
                ResourceVector::ZERO
            );
            game_count
        ];

        for t in 0..self.ticks {
            let tick_start = std::time::Instant::now();
            if let Some(rec) = flight.as_mut() {
                rec.begin_tick(t as u64);
            }
            let fired_before = fault_cursor;
            let now = SimTime(t as u64);
            let dynamic = self.mode == AllocationMode::Dynamic;
            // Fault application: serial, before the fan-out, so revoked
            // capacity is already gone when this tick is scored and the
            // events land in program order.
            let mut dropout = false;
            while fault_cursor < fault_queue.len() && fault_queue[fault_cursor].tick == t as u64 {
                let ev = fault_queue[fault_cursor];
                fault_cursor += 1;
                fault_event_count += 1;
                if ev.kind != FaultKind::PredictorDropout && ev.center >= self.centers.len() {
                    continue; // explicit schedule naming a center we don't have
                }
                match ev.kind {
                    FaultKind::CenterDown => {
                        let lost = self.centers[ev.center].fail();
                        leases_revoked += lost.len() as u64;
                        for group in &mut self.groups {
                            let dropped = group.provisioner.drop_leases_at_center(ev.center);
                            // Terminal lifecycle events for the outage's
                            // victims: groups are walked in index order,
                            // so the emission order is jobs-independent.
                            if let Some(sink) = sink.as_mut() {
                                let op = group.provisioner.operator.0;
                                for lease in &dropped {
                                    sink.emit(
                                        "lease_release",
                                        &[
                                            ("tick", t.into()),
                                            ("center", ev.center.into()),
                                            ("lease", lease.id.0.into()),
                                            ("operator", op.into()),
                                            ("cpu", lease.amounts.cpu.into()),
                                            ("cause", ReleaseCause::CenterDown.label().into()),
                                        ],
                                    );
                                }
                            }
                        }
                        if !open_outages.iter().any(|(c, _)| *c == ev.center) {
                            open_outages.push((ev.center, t as u64));
                        }
                        if let Some(sink) = sink.as_mut() {
                            sink.emit(
                                "center_down",
                                &[
                                    ("tick", t.into()),
                                    ("center", ev.center.into()),
                                    ("name", self.centers[ev.center].spec.name.as_str().into()),
                                    ("leases_lost", lost.len().into()),
                                ],
                            );
                        }
                    }
                    FaultKind::CenterUp => {
                        self.centers[ev.center].repair();
                        if let Some(sink) = sink.as_mut() {
                            sink.emit(
                                "center_up",
                                &[
                                    ("tick", t.into()),
                                    ("center", ev.center.into()),
                                    ("name", self.centers[ev.center].spec.name.as_str().into()),
                                ],
                            );
                        }
                    }
                    FaultKind::CenterDegraded { fraction } => {
                        self.centers[ev.center].degrade(fraction);
                        if let Some(sink) = sink.as_mut() {
                            sink.emit(
                                "center_degraded",
                                &[
                                    ("tick", t.into()),
                                    ("center", ev.center.into()),
                                    ("fraction", fraction.into()),
                                ],
                            );
                        }
                    }
                    FaultKind::LeaseRevoked => {
                        if let Some(lease) = self.centers[ev.center].revoke_oldest() {
                            for group in &mut self.groups {
                                if group.provisioner.drop_lease(ev.center, lease.id).is_some() {
                                    break;
                                }
                            }
                            leases_revoked += 1;
                            if let Some(sink) = sink.as_mut() {
                                sink.emit(
                                    "lease_revoked",
                                    &[
                                        ("tick", t.into()),
                                        ("center", ev.center.into()),
                                        ("lease", lease.id.0.into()),
                                        ("operator", lease.operator.0.into()),
                                        ("cpu", lease.amounts.cpu.into()),
                                    ],
                                );
                            }
                        }
                    }
                    FaultKind::PredictorDropout => {
                        dropout = true;
                        if let Some(sink) = sink.as_mut() {
                            sink.emit("predictor_dropout", &[("tick", t.into())]);
                        }
                    }
                }
            }
            // Fill this tick's player counts into the hot array from
            // each game's source (serial: streaming sources advance
            // stateful generators; the materialized copy is a gather).
            let hot = &mut self.hot;
            for src in &mut self.sources {
                match src {
                    WorkloadSource::Materialized { start, series } => {
                        for (j, s) in series.iter().enumerate() {
                            hot[*start + j].players = s.values()[t];
                        }
                    }
                    WorkloadSource::Streaming { start, stream } => {
                        let row = &mut self.players_scratch[..stream.group_count()];
                        let produced = stream.next_tick(row);
                        debug_assert!(produced, "ticks clamped to the stream length");
                        for (j, &p) in row.iter().enumerate() {
                            hot[*start + j].players = p;
                        }
                    }
                }
            }
            // Scenario application: serial, after the fill (so migration
            // costs are charged against this tick's player counts) and
            // before the fan-out (so dropped leases and flash-crowd
            // demand are visible the same tick).
            let mut partition_fired = false;
            let mut migration_fired = false;
            if scenario_active {
                let topo = topology.as_mut().expect("scenario runs install a topology");
                while scenario_cursor < scenario_queue.len()
                    && scenario_queue[scenario_cursor].tick == t as u64
                {
                    let ev = scenario_queue[scenario_cursor];
                    scenario_cursor += 1;
                    scenario_event_count += 1;
                    match ev.kind {
                        ScenarioEventKind::Partition { mask } => {
                            topo.partition(mask);
                            partition_fired = true;
                            let components = topo.components();
                            if let Some(rec) = flight.as_mut() {
                                rec.push("partition", t as u64, &[mask as f64, components as f64]);
                            }
                            if let Some(sink) = sink.as_mut() {
                                sink.emit(
                                    "partition",
                                    &[
                                        ("tick", t.into()),
                                        ("mask", mask.into()),
                                        ("components", components.into()),
                                    ],
                                );
                            }
                        }
                        ScenarioEventKind::Heal => {
                            topo.heal();
                            let components = topo.components();
                            if let Some(rec) = flight.as_mut() {
                                rec.push("heal", t as u64, &[components as f64]);
                            }
                            if let Some(sink) = sink.as_mut() {
                                sink.emit(
                                    "heal",
                                    &[("tick", t.into()), ("components", components.into())],
                                );
                            }
                        }
                        ScenarioEventKind::LinkDegrade { .. }
                        | ScenarioEventKind::LinkRestore { .. } => {
                            let (a, b, factor) = match ev.kind {
                                ScenarioEventKind::LinkDegrade { a, b, factor } => (a, b, factor),
                                ScenarioEventKind::LinkRestore { a, b } => (a, b, 1.0),
                                _ => unreachable!("outer arm matched a link event"),
                            };
                            topo.set_link_factor(a as usize, b as usize, factor);
                            if let Some(rec) = flight.as_mut() {
                                rec.push(
                                    "topology_change",
                                    t as u64,
                                    &[f64::from(a), f64::from(b), factor],
                                );
                            }
                            if let Some(sink) = sink.as_mut() {
                                sink.emit(
                                    "topology_change",
                                    &[
                                        ("tick", t.into()),
                                        ("a", a.into()),
                                        ("b", b.into()),
                                        ("factor", factor.into()),
                                    ],
                                );
                            }
                        }
                        ScenarioEventKind::FlashBegin { .. }
                        | ScenarioEventKind::FlashEnd { .. } => {
                            if n_regions == 0 {
                                continue;
                            }
                            let (pick, factor) = match ev.kind {
                                ScenarioEventKind::FlashBegin { pick, factor } => {
                                    flashes_active += 1;
                                    (pick, factor)
                                }
                                ScenarioEventKind::FlashEnd { pick } => {
                                    flashes_active = flashes_active.saturating_sub(1);
                                    (pick, 1.0)
                                }
                                _ => unreachable!("outer arm matched a flash event"),
                            };
                            let region = (pick % n_regions as u64) as usize;
                            region_flash[region] = factor;
                            let groups = self.region_group_counts[region];
                            if let Some(rec) = flight.as_mut() {
                                rec.push(
                                    "flash_crowd",
                                    t as u64,
                                    &[region as f64, factor, groups as f64],
                                );
                            }
                            if let Some(sink) = sink.as_mut() {
                                sink.emit(
                                    "flash_crowd",
                                    &[
                                        ("tick", t.into()),
                                        ("region", region.into()),
                                        ("factor", factor.into()),
                                        ("groups", groups.into()),
                                    ],
                                );
                            }
                        }
                        ScenarioEventKind::Migrate { pick } => {
                            let gi = (pick % self.groups.len() as u64) as usize;
                            // Drain the group everywhere it holds
                            // leases; the centers stay up, so each lease
                            // must be revoked center-side too.
                            let mut total_dropped = 0usize;
                            let mut principal: Option<(usize, f64)> = None;
                            for c in 0..self.centers.len() {
                                let dropped = self.groups[gi].provisioner.drop_leases_at_center(c);
                                if dropped.is_empty() {
                                    continue;
                                }
                                let cpu: f64 = dropped.iter().map(|l| l.amounts.cpu).sum();
                                for lease in &dropped {
                                    self.centers[c].revoke(lease.id);
                                }
                                if let Some(sink) = sink.as_mut() {
                                    let op = self.groups[gi].provisioner.operator.0;
                                    for lease in &dropped {
                                        sink.emit(
                                            "lease_release",
                                            &[
                                                ("tick", t.into()),
                                                ("center", c.into()),
                                                ("lease", lease.id.0.into()),
                                                ("operator", op.into()),
                                                ("cpu", lease.amounts.cpu.into()),
                                                ("cause", ReleaseCause::Migration.label().into()),
                                            ],
                                        );
                                    }
                                }
                                total_dropped += dropped.len();
                                if principal.is_none_or(|(_, best)| cpu > best) {
                                    principal = Some((c, cpu));
                                }
                            }
                            // A group with nothing allocated migrates
                            // for free: nothing moved, nothing charged.
                            if total_dropped == 0 {
                                continue;
                            }
                            let (center, _) = principal.expect("leases were dropped");
                            let players = self.hot[gi].players;
                            let cost = players * migration_cost as f64;
                            migration_player_ticks += cost;
                            unserved_player_ticks += cost;
                            migrations += 1;
                            migration_fired = true;
                            if !open_outages.iter().any(|(c, _)| *c == center) {
                                open_outages.push((center, t as u64));
                            }
                            if let Some(rec) = flight.as_mut() {
                                rec.push(
                                    "migration",
                                    t as u64,
                                    &[gi as f64, center as f64, total_dropped as f64, cost],
                                );
                            }
                            if let Some(sink) = sink.as_mut() {
                                sink.emit(
                                    "migration",
                                    &[
                                        ("tick", t.into()),
                                        ("group", gi.into()),
                                        ("center", center.into()),
                                        ("leases", total_dropped.into()),
                                        ("cost", cost.into()),
                                    ],
                                );
                            }
                        }
                        ScenarioEventKind::RegionFailover { center } => {
                            let center = center as usize;
                            if center >= self.centers.len() {
                                continue;
                            }
                            for gi in 0..self.groups.len() {
                                let dropped =
                                    self.groups[gi].provisioner.drop_leases_at_center(center);
                                if dropped.is_empty() {
                                    continue;
                                }
                                for lease in &dropped {
                                    self.centers[center].revoke(lease.id);
                                }
                                if let Some(sink) = sink.as_mut() {
                                    let op = self.groups[gi].provisioner.operator.0;
                                    for lease in &dropped {
                                        sink.emit(
                                            "lease_release",
                                            &[
                                                ("tick", t.into()),
                                                ("center", center.into()),
                                                ("lease", lease.id.0.into()),
                                                ("operator", op.into()),
                                                ("cpu", lease.amounts.cpu.into()),
                                                ("cause", ReleaseCause::Failover.label().into()),
                                            ],
                                        );
                                    }
                                }
                                let players = self.hot[gi].players;
                                let cost = players * migration_cost as f64;
                                migration_player_ticks += cost;
                                unserved_player_ticks += cost;
                                migrations += 1;
                                migration_fired = true;
                                if !open_outages.iter().any(|(c, _)| *c == center) {
                                    open_outages.push((center, t as u64));
                                }
                                if let Some(rec) = flight.as_mut() {
                                    rec.push(
                                        "migration",
                                        t as u64,
                                        &[gi as f64, center as f64, dropped.len() as f64, cost],
                                    );
                                }
                                if let Some(sink) = sink.as_mut() {
                                    sink.emit(
                                        "migration",
                                        &[
                                            ("tick", t.into()),
                                            ("group", gi.into()),
                                            ("center", center.into()),
                                            ("leases", dropped.len().into()),
                                            ("cost", cost.into()),
                                        ],
                                    );
                                }
                            }
                        }
                    }
                }
                // Flash crowds multiply demand while active: every group
                // in a surging region sees its player count scaled.
                if flashes_active > 0 {
                    for (hot, &rid) in self.hot.iter_mut().zip(&self.region_ids) {
                        hot.players *= region_flash[rid as usize];
                    }
                }
            }
            // Fan-out: score the allocation in force against the actual
            // demand and (in dynamic mode) compute each group's next
            // demand target. Each group touches only its own cold state
            // and its slot in the contiguous hot array.
            let step = |_i: usize, group: &mut GroupRuntime, hot: &mut GroupHot| {
                let players = hot.players;
                // Score the prediction made last tick against this
                // tick's observation. Per-group accumulators keep the
                // sums deterministic under the fan-out.
                let prev = group.provisioner.last_prediction();
                if dynamic && prev.is_finite() {
                    hot.abs_err_sum += (prev - players).abs();
                    hot.actual_sum += players;
                }
                hot.demand = group.demand_model.demand(players);
                hot.alloc = group.provisioner.allocated();
                hot.short = (hot.alloc - hot.demand).min(&ResourceVector::ZERO);
                hot.target = if dynamic {
                    if dropout {
                        // The schedule dropped the predictor this tick:
                        // last-value fallback, history stays warm.
                        group.provisioner.observe_and_target_fallback(players)
                    } else {
                        group.provisioner.observe_and_target(players)
                    }
                } else {
                    ResourceVector::ZERO
                };
            };
            let predict_start = std::time::Instant::now();
            match &pool {
                Some(pool) => pool.for_each_mut2(&mut self.groups, &mut self.hot, step),
                None => {
                    for (i, (group, hot)) in
                        self.groups.iter_mut().zip(self.hot.iter_mut()).enumerate()
                    {
                        step(i, group, hot);
                    }
                }
            }
            let predict_ns = ns_since(predict_start);
            t_predict.record_ns(predict_ns);
            l_predict.record(predict_ns);
            let reduce_start = std::time::Instant::now();
            // Ordered reduction (Eq. 2's min is per server group so one
            // group's surplus never hides another's deficit): fold the
            // scratch in group-index order — float sums come out
            // bit-identical to the serial engine for any thread count.
            let mut total_demand = ResourceVector::ZERO;
            let mut total_alloc = ResourceVector::ZERO;
            let mut shortfall = ResourceVector::ZERO;
            for entry in per_game.iter_mut() {
                *entry = (
                    ResourceVector::ZERO,
                    ResourceVector::ZERO,
                    ResourceVector::ZERO,
                );
            }
            for (group, hot) in self.groups.iter().zip(&self.hot) {
                total_demand += hot.demand;
                total_alloc += hot.alloc;
                shortfall += hot.short;
                let entry = &mut per_game[group.game];
                entry.0 += hot.alloc;
                entry.1 += hot.demand;
                entry.2 += hot.short;
            }
            if t >= self.warmup {
                metrics.record(now, &total_alloc, &total_demand, &shortfall, machines);
                for (gi, (alloc, demand, short)) in per_game.iter().enumerate() {
                    game_metrics[gi].record(now, alloc, demand, short, game_machines[gi]);
                }
                demand_cpu_series.push(total_demand.cpu);
                alloc_cpu_series.push(total_alloc.cpu);
                for (center, acc) in self.centers.iter().zip(usage.iter_mut()) {
                    for &(op, cpu) in center.lease_cpu() {
                        let slot = op_slot[op as usize] as usize;
                        debug_assert!(slot < op_ids.len(), "lease from a non-group operator");
                        acc.0[slot] += cpu;
                        acc.1[slot] = true;
                    }
                    acc.2 += center.free().cpu;
                }
            }
            if let Some(sink) = sink.as_mut() {
                sink.emit(
                    "tick",
                    &[
                        ("tick", t.into()),
                        ("demand_cpu", total_demand.cpu.into()),
                        ("alloc_cpu", total_alloc.cpu.into()),
                        ("shortfall_cpu", shortfall.cpu.into()),
                    ],
                );
                // Per-center allocation snapshots for the analytics
                // timelines, sampled on a tick-count-derived stride (plus
                // the final tick) so suite-scale traces stay bounded.
                if t % center_tick_stride == 0 || t + 1 == self.ticks {
                    for (ci, center) in self.centers.iter().enumerate() {
                        let alloc_cpu: f64 = center.leases().iter().map(|l| l.amounts.cpu).sum();
                        sink.emit(
                            "center_tick",
                            &[
                                ("tick", t.into()),
                                ("center", ci.into()),
                                ("alloc_cpu", alloc_cpu.into()),
                                ("free_cpu", center.free().cpu.into()),
                            ],
                        );
                    }
                }
            }
            let reduce_ns = ns_since(reduce_start);
            t_reduce.record_ns(reduce_ns);
            l_reduce.record(reduce_ns);
            // Serial stage: adjust allocations for the next tick, in
            // priority order — higher-priority games lease (and keep)
            // capacity first. Matching contends on the shared centers,
            // so this ordering IS the semantics and cannot fan out.
            let mut settle_ns = None;
            let mut tick_skips = 0u64;
            let mut tick_full = 0u64;
            if dynamic {
                let settle_start = std::time::Instant::now();
                {
                    for gi in 0..self.processing_order.len() {
                        let idx = self.processing_order[gi];
                        let target = self.hot[idx].target;
                        let group = &mut self.groups[idx];
                        let out = group.provisioner.adjust_via(
                            topology.as_ref(),
                            &target,
                            &mut self.centers,
                            now,
                        );
                        if out.replayed {
                            tick_skips += 1;
                        } else {
                            tick_full += 1;
                        }
                        leases_granted += out.granted as u64;
                        leases_released += out.released as u64;
                        rejections.merge(&out.rejections);
                        if out.unmet {
                            unmet_steps += 1;
                        }
                        if faults_active || scenario_active {
                            let lost = group.provisioner.lost_capacity();
                            if !lost.is_negligible(1e-9) {
                                if out.granted > 0 {
                                    reprovisions += out.granted as u64;
                                    if let Some(sink) = sink.as_mut() {
                                        sink.emit(
                                            "reprovision",
                                            &[
                                                ("tick", t.into()),
                                                ("operator", group.provisioner.operator.0.into()),
                                                ("granted", out.granted.into()),
                                                ("lost_cpu", lost.cpu.into()),
                                            ],
                                        );
                                    }
                                }
                                // Whole again: stop attributing grants
                                // to fault recovery.
                                if !out.unmet && !out.deferred {
                                    group.provisioner.clear_lost_capacity();
                                }
                            }
                        }
                        emit_adjust_events(
                            sink.as_mut(),
                            flight.as_mut(),
                            t,
                            &group.provisioner,
                            &target,
                            &out,
                        );
                    }
                }
                settle_ns = Some(ns_since(settle_start));
            } else if faults_active || scenario_active {
                // Static mode under faults or scenarios: the operator
                // re-buys its fixed peak allocation after losing
                // capacity (it never otherwise adjusts). Without a
                // schedule or timeline this loop body is unreachable —
                // static stays allocate-once.
                let settle_start = std::time::Instant::now();
                {
                    for gi in 0..self.processing_order.len() {
                        let idx = self.processing_order[gi];
                        let lost = self.groups[idx].provisioner.lost_capacity();
                        if lost.is_negligible(1e-9) {
                            continue;
                        }
                        let target = self.static_targets[idx];
                        let group = &mut self.groups[idx];
                        let out = group.provisioner.adjust_via(
                            topology.as_ref(),
                            &target,
                            &mut self.centers,
                            now,
                        );
                        if out.replayed {
                            tick_skips += 1;
                        } else {
                            tick_full += 1;
                        }
                        leases_granted += out.granted as u64;
                        leases_released += out.released as u64;
                        rejections.merge(&out.rejections);
                        if out.unmet {
                            unmet_steps += 1;
                        }
                        if out.granted > 0 {
                            reprovisions += out.granted as u64;
                            if let Some(sink) = sink.as_mut() {
                                sink.emit(
                                    "reprovision",
                                    &[
                                        ("tick", t.into()),
                                        ("operator", group.provisioner.operator.0.into()),
                                        ("granted", out.granted.into()),
                                        ("lost_cpu", lost.cpu.into()),
                                    ],
                                );
                            }
                        }
                        if !out.unmet && !out.deferred {
                            group.provisioner.clear_lost_capacity();
                        }
                        emit_adjust_events(
                            sink.as_mut(),
                            flight.as_mut(),
                            t,
                            &group.provisioner,
                            &target,
                            &out,
                        );
                    }
                }
                settle_ns = Some(ns_since(settle_start));
            }
            if let Some(ns) = settle_ns {
                t_settle.record_ns(ns);
                l_settle.record(ns);
                c_skips.add(tick_skips);
                c_full.add(tick_full);
                if tick_full == 0 && tick_skips > 0 {
                    // A pure fast-path tick: the whole settle stage was
                    // memo replays, so its duration belongs to the skip
                    // distribution too.
                    l_skip.record(ns);
                }
            }
            if faults_active || scenario_active {
                // Unserved player-ticks: each group's players scaled by
                // the fraction of its target the settle stage could not
                // (re-)acquire. Routine prediction lag never shows up
                // here (a met request zeroes the deficit), so a healthy
                // run contributes nothing and an outage episode closes
                // at the first tick the platform is whole again.
                let mut tick_unserved = 0.0f64;
                for (gi, group) in self.groups.iter().enumerate() {
                    let target = if dynamic {
                        self.hot[gi].target
                    } else {
                        self.static_targets[gi]
                    };
                    if target.cpu <= 1e-12 {
                        continue;
                    }
                    let deficit = (target.cpu - group.provisioner.allocated().cpu).max(0.0);
                    if deficit <= 1e-9 {
                        continue;
                    }
                    let players = self.hot[gi].players;
                    tick_unserved += players * (deficit / target.cpu).clamp(0.0, 1.0);
                }
                unserved_player_ticks += tick_unserved;
                if !open_outages.is_empty() && tick_unserved <= 1e-9 {
                    for (center, start) in open_outages.drain(..) {
                        let down_ticks = t as u64 - start;
                        recovery_ticks.push(down_ticks);
                        if let Some(sink) = sink.as_mut() {
                            sink.emit(
                                "fault_recovery",
                                &[
                                    ("tick", t.into()),
                                    ("center", center.into()),
                                    ("down_ticks", down_ticks.into()),
                                ],
                            );
                        }
                    }
                }
            }
            let tick_ns = ns_since(tick_start);
            l_tick.record(tick_ns);
            // Time-series + live tap, fed from this serial tail. The
            // skip rate is this tick's memo-replay fraction; with no
            // settle stage this tick it is zero. It is a timing series,
            // like the `sim.match.skips` counter: memo replays key on
            // the process-wide availability epoch, so a concurrent
            // run's fault can demote a replay to an (equally no-op)
            // full walk without any semantic output changing.
            let settled = tick_skips + tick_full;
            let skip_rate = if settled > 0 {
                tick_skips as f64 / settled as f64
            } else {
                0.0
            };
            if let Some(ts) = ts.as_mut() {
                ts.record_semantic("demand_cpu", total_demand.cpu);
                ts.record_semantic("alloc_cpu", total_alloc.cpu);
                ts.record_semantic("shortfall_cpu", shortfall.cpu);
                ts.record_timing("match_skip_rate", skip_rate);
                ts.record_timing("predict_ns", predict_ns as f64);
                ts.record_timing("reduce_ns", reduce_ns as f64);
                ts.record_timing("settle_ns", settle_ns.unwrap_or(0) as f64);
                ts.record_timing("tick_ns", tick_ns as f64);
                ts_samples += 8;
            }
            if let Some(cfg) = live.as_ref() {
                let done = t + 1 == self.ticks;
                let due = (t as u64).is_multiple_of(live_interval) || done;
                let throttled =
                    !done && last_live_write.is_some_and(|at| at.elapsed() < MIN_LIVE_WRITE_GAP);
                if due && !throttled {
                    let p99_us = |l: &mmog_obs::LatencyHisto| {
                        l.snapshot().p99().map_or(0.0, |ns| ns as f64 / 1000.0)
                    };
                    let snap = mmog_obs::LiveSnapshot {
                        run: self.trace_label.clone(),
                        tick: t as u64,
                        ticks_total: self.ticks as u64,
                        done,
                        demand_cpu: total_demand.cpu,
                        alloc_cpu: total_alloc.cpu,
                        shortfall_cpu: shortfall.cpu,
                        match_skip_rate: skip_rate,
                        leases_held: self
                            .groups
                            .iter()
                            .map(|g| g.provisioner.held_leases().len() as u64)
                            .sum(),
                        fault_events: schedule.as_ref().map_or(0, |s| s.applied_through(t as u64)),
                        scenario_events: scenario
                            .as_ref()
                            .map_or(0, |s| s.applied_through(t as u64)),
                        centers_down: self.centers.iter().filter(|c| c.is_down()).count() as u64,
                        centers: self
                            .centers
                            .iter()
                            .map(|c| mmog_obs::LiveCenter {
                                name: c.spec.name.clone(),
                                alloc_cpu: c.allocated().cpu,
                                capacity_cpu: c.effective_capacity().cpu,
                            })
                            .collect(),
                        tick_rate: (t + 1) as f64
                            / run_start_wall.elapsed().as_secs_f64().max(1e-9),
                        stage_p99_us: vec![
                            ("predict_score".to_string(), p99_us(&l_predict)),
                            ("reduce".to_string(), p99_us(&l_reduce)),
                            ("match_settle".to_string(), p99_us(&l_settle)),
                            ("tick".to_string(), p99_us(&l_tick)),
                        ],
                    };
                    let write_start = std::time::Instant::now();
                    if let Err(err) = mmog_obs::write_live(&cfg.path, &snap.to_value()) {
                        eprintln!("warning: live snapshot write failed: {err}");
                    }
                    live_write_ns += ns_since(write_start);
                    live_writes += 1;
                    last_live_write = Some(std::time::Instant::now());
                }
            }
            if let Some(rec) = flight.as_mut() {
                let tick = t as u64;
                rec.push(
                    "tick",
                    tick,
                    &[total_demand.cpu, total_alloc.cpu, shortfall.cpu],
                );
                // Stage latencies travel with the window so a dump shows
                // both what the engine decided and how long it took.
                rec.push(
                    "tick_latency",
                    tick,
                    &[
                        predict_ns as f64,
                        reduce_ns as f64,
                        settle_ns.unwrap_or(0) as f64,
                        tick_ns as f64,
                    ],
                );
                // Trigger decisions, in fixed priority order: faults are
                // semantic (deterministic for a fixed schedule), the
                // deadline is wall-clock (opt-in via the config).
                if fault_cursor > fired_before {
                    if let Err(err) = rec.trigger(FlightTrigger::Fault, tick, &self.trace_label) {
                        eprintln!("warning: flight dump failed: {err}");
                    }
                } else if partition_fired {
                    if let Err(err) = rec.trigger(FlightTrigger::Partition, tick, &self.trace_label)
                    {
                        eprintln!("warning: flight dump failed: {err}");
                    }
                } else if migration_fired {
                    if let Err(err) = rec.trigger(FlightTrigger::Migration, tick, &self.trace_label)
                    {
                        eprintln!("warning: flight dump failed: {err}");
                    }
                } else if rec.deadline_ns().is_some_and(|d| tick_ns > d) {
                    if let Err(err) =
                        rec.trigger(FlightTrigger::DeadlineOverrun, tick, &self.trace_label)
                    {
                        eprintln!("warning: flight dump failed: {err}");
                    }
                }
            }
        }

        let center_usage: Vec<CenterUsage> = self
            .centers
            .iter()
            .zip(usage)
            .map(|(c, (sums, touched, free))| {
                // Slots are in ascending operator-id order, so both the
                // map contents and the total's summation order match
                // the historical `BTreeMap` accumulation exactly; an
                // operator that never leased here stays absent even if
                // its (untouched) slot is zero.
                let by_op: BTreeMap<u32, f64> = op_ids
                    .iter()
                    .zip(sums)
                    .zip(touched)
                    .filter(|(_, t)| *t)
                    .map(|((op, sum), _)| (*op, sum))
                    .collect();
                CenterUsage {
                    name: c.spec.name.clone(),
                    capacity_cpu: c.spec.capacity().cpu,
                    cpu_total: by_op.values().sum(),
                    cpu_by_operator: by_op,
                    cpu_free: free,
                }
            })
            .collect();

        mmog_obs::counter("sim.unmet_steps", Domain::Semantic).add(unmet_steps);
        mmog_obs::counter("sim.leases_granted", Domain::Semantic).add(leases_granted);
        mmog_obs::counter("sim.leases_released", Domain::Semantic).add(leases_released);
        // Fault counters register only on faulted runs, so an unfaulted
        // metrics summary stays byte-identical to the baseline.
        if faults_active {
            mmog_obs::counter("faults.events", Domain::Semantic).add(fault_event_count);
            mmog_obs::counter("faults.leases_revoked", Domain::Semantic).add(leases_revoked);
            mmog_obs::counter("faults.reprovisions", Domain::Semantic).add(reprovisions);
            mmog_obs::counter("faults.outages_recovered", Domain::Semantic)
                .add(recovery_ticks.len() as u64);
            mmog_obs::counter("faults.outages_unrecovered", Domain::Semantic)
                .add(open_outages.len() as u64);
        }
        // Scenario counters likewise register only on scenario runs.
        if scenario_active {
            mmog_obs::counter("scenario.events", Domain::Semantic).add(scenario_event_count);
            mmog_obs::counter("scenario.migrations", Domain::Semantic).add(migrations);
        }
        // Per-group online prediction error (the paper's metric, scored
        // over the whole run); both the histogram records and the event
        // values are per-group deterministic quantities.
        let err_hist = mmog_obs::histogram(
            "sim.prediction_error_pct",
            Domain::Semantic,
            &[1.0, 2.0, 5.0, 10.0, 20.0, 50.0],
        );
        for (gi, (group, hot)) in self.groups.iter().zip(&self.hot).enumerate() {
            if hot.actual_sum <= 0.0 {
                continue;
            }
            let error_pct = 100.0 * hot.abs_err_sum / hot.actual_sum;
            err_hist.record(error_pct);
            if let Some(sink) = sink.as_mut() {
                sink.emit(
                    "prediction_group",
                    &[
                        ("group", gi.into()),
                        ("operator", group.provisioner.operator.0.into()),
                        ("game", self.game_names[group.game].as_str().into()),
                        ("error_pct", error_pct.into()),
                    ],
                );
            }
        }
        if let Some(mut sink) = sink {
            // Integrated per-center usage: the bulk-waste attribution of
            // Figures 13–14, one event per center in platform order.
            for u in &center_usage {
                sink.emit(
                    "center_usage",
                    &[
                        ("name", u.name.as_str().into()),
                        ("capacity_cpu", u.capacity_cpu.into()),
                        ("cpu_unit_ticks", u.cpu_total.into()),
                        ("cpu_free_unit_ticks", u.cpu_free.into()),
                    ],
                );
            }
            if faults_active {
                sink.emit(
                    "fault_summary",
                    &[
                        ("events", fault_event_count.into()),
                        ("leases_revoked", leases_revoked.into()),
                        ("reprovisions", reprovisions.into()),
                        ("unserved_player_ticks", unserved_player_ticks.into()),
                        ("recovered", recovery_ticks.len().into()),
                        ("unrecovered", open_outages.len().into()),
                    ],
                );
            }
            // Lifecycle closure: every lease still held at run end gets
            // its terminal event (groups in index order), so the
            // analyzer always reconstructs 100% of granted leases.
            let end_tick = self.ticks.saturating_sub(1);
            for group in &self.groups {
                let op = group.provisioner.operator.0;
                for held in group.provisioner.held_leases() {
                    sink.emit(
                        "lease_release",
                        &[
                            ("tick", end_tick.into()),
                            ("center", held.center.into()),
                            ("lease", held.lease.id.0.into()),
                            ("operator", op.into()),
                            ("cpu", held.lease.amounts.cpu.into()),
                            ("cause", ReleaseCause::RunEnd.label().into()),
                        ],
                    );
                }
            }
            sink.emit(
                "run_end",
                &[
                    ("ticks", self.ticks.into()),
                    ("unmet_steps", unmet_steps.into()),
                    ("leases_granted", leases_granted.into()),
                    ("leases_released", leases_released.into()),
                ],
            );
            sink.submit(&self.trace_label);
        }

        // Time-series submission + self-cost accounting (timing domain:
        // sample counts depend on whether the planes are enabled, never
        // on the run's semantics).
        if let Some(ts) = ts.take() {
            mmog_obs::submit_ts(
                &self.trace_label,
                &ts.to_value(&self.trace_label, self.ticks as u64),
            );
            mmog_obs::counter("obs.self.ts_samples", Domain::Timing).add(ts_samples);
        }
        if live.is_some() {
            mmog_obs::counter("obs.self.live_writes", Domain::Timing).add(live_writes);
            mmog_obs::counter("obs.self.live_write_ns", Domain::Timing).add(live_write_ns);
        }

        // Flight recorder teardown: the end-of-run explicit dump (when
        // `--flight-dump` asked for one), the recorder's own cost
        // counters (timing domain — the registration must not perturb
        // semantic summaries), and the dump report for harnesses.
        let flight_dump = flight.and_then(|mut rec| {
            if let Err(err) = rec.finish(self.ticks.saturating_sub(1) as u64, &self.trace_label) {
                eprintln!("warning: flight dump failed: {err}");
            }
            mmog_obs::counter("obs.self.flight_pushes", Domain::Timing).add(rec.pushed());
            mmog_obs::counter("obs.self.flight_dropped", Domain::Timing).add(rec.dropped());
            mmog_obs::counter("obs.self.flight_suppressed", Domain::Timing).add(rec.suppressed());
            mmog_obs::counter("obs.self.flight_dumps", Domain::Timing)
                .add(u64::from(rec.dump_info().is_some()));
            rec.into_dump_info().map(|info| FlightDumpReport {
                trigger: info.trigger.to_string(),
                trigger_tick: info.trigger_tick,
                tick_from: info.tick_from,
                tick_to: info.tick_to,
                records: info.records,
                path: info.path.display().to_string(),
            })
        });

        SimReport {
            metrics,
            per_game: self
                .game_names
                .iter()
                .zip(game_metrics)
                .map(|(name, metrics)| GameMetrics {
                    name: name.clone(),
                    metrics,
                })
                .collect(),
            center_usage,
            operator_origins: self.operator_origins,
            demand_cpu_series,
            alloc_cpu_series,
            unmet_steps,
            ticks: self.ticks,
            rejections,
            unserved_player_ticks,
            recovery_ticks,
            unrecovered_outages: open_outages.len(),
            fault_events: fault_event_count,
            leases_revoked,
            reprovisions,
            scenario_events: scenario_event_count,
            migrations,
            migration_player_ticks,
            flight_dump,
        }
    }
}

impl SimReport {
    /// Shares of total allocated CPU unit-ticks per distance class
    /// between the request origin and the granting center — the bars of
    /// Figure 13. `centers` must be the configuration's center list (for
    /// locations). Returns `(class label, share in percent)`.
    #[must_use]
    pub fn allocation_by_distance_class(&self, centers: &[DataCenter]) -> Vec<(&'static str, f64)> {
        use mmog_util::geo::DistanceClass;
        let mut buckets = [0.0f64; 5];
        let mut total = 0.0;
        for (usage, center) in self.center_usage.iter().zip(centers) {
            for (op, units) in &usage.cpu_by_operator {
                let Some((_, origin)) = self.operator_origins.get(op) else {
                    continue;
                };
                let d = center.spec.location.distance_km(origin);
                let class = DistanceClass::ALL
                    .iter()
                    .position(|c| c.admits(d))
                    .unwrap_or(DistanceClass::ALL.len() - 1);
                buckets[class] += units;
                total += units;
            }
        }
        DistanceClass::ALL
            .iter()
            .zip(buckets)
            .map(|(c, b)| (c.label(), if total > 0.0 { 100.0 * b / total } else { 0.0 }))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmog_datacenter::locations::table3_hp12;
    use mmog_util::time::TICKS_PER_DAY;
    use mmog_workload::runescape::{generate, RuneScapeConfig};

    fn small_trace(days: u64, seed: u64) -> GameTrace {
        let mut cfg = RuneScapeConfig::paper_default(days, seed);
        cfg.regions.truncate(2);
        cfg.regions[0].groups = 6;
        cfg.regions[1].groups = 4;
        cfg.outage_prob_per_day = 0.0;
        generate(&cfg)
    }

    fn base_config(mode: AllocationMode, predictor: PredictorKind) -> SimulationConfig {
        SimulationConfig {
            centers: table3_hp12(),
            games: vec![GameSpec {
                name: "game".into(),
                operator_base: 0,
                update_model: UpdateModel::Quadratic,
                tolerance: DistanceClass::VeryFar,
                headroom: 1.0,
                predictor,
                workload: small_trace(2, 5).into(),
                static_peak_players: 2100.0, // capacity x the 1.05 overfull clamp
                priority: 0,
            }],
            mode,
            ticks: None,
            warmup_ticks: 30,
            train_ticks: 0,
            master_seed: 5,
            faults: None,
            scenario: None,
        }
    }

    #[test]
    fn dynamic_run_produces_full_report() {
        let report = Simulation::new(base_config(
            AllocationMode::Dynamic,
            PredictorKind::LastValue,
        ))
        .run();
        assert_eq!(report.ticks, 2 * TICKS_PER_DAY as usize);
        assert_eq!(
            report.metrics.samples(),
            (report.ticks - 30) as u64,
            "warm-up excluded"
        );
        assert_eq!(report.center_usage.len(), 17);
    }

    #[test]
    fn dynamic_tracks_demand_with_modest_over_allocation() {
        let report = Simulation::new(base_config(
            AllocationMode::Dynamic,
            PredictorKind::LastValue,
        ))
        .run();
        use mmog_datacenter::resource::ResourceType;
        let over = report.metrics.avg_over(ResourceType::Cpu);
        assert!(
            over > 0.0,
            "bulk rounding guarantees some over-allocation: {over}"
        );
        assert!(over < 150.0, "dynamic CPU over-allocation too high: {over}");
        // Under-allocation should be small in magnitude.
        let under = report.metrics.avg_under(ResourceType::Cpu);
        assert!(under <= 0.0);
        assert!(under > -5.0, "under-allocation {under}");
    }

    #[test]
    fn static_over_allocates_much_more_than_dynamic() {
        // The headline claim: "static resource provisioning can be on
        // average from five up to ten times more inefficient".
        use mmog_datacenter::resource::ResourceType;
        let dynamic = Simulation::new(base_config(
            AllocationMode::Dynamic,
            PredictorKind::LastValue,
        ))
        .run();
        let static_ = Simulation::new(base_config(
            AllocationMode::Static,
            PredictorKind::LastValue,
        ))
        .run();
        let od = dynamic.metrics.avg_over(ResourceType::Cpu);
        let os = static_.metrics.avg_over(ResourceType::Cpu);
        assert!(os > 2.0 * od, "static {os}% should dwarf dynamic {od}%");
    }

    #[test]
    fn static_never_under_allocates() {
        use mmog_datacenter::resource::ResourceType;
        let report = Simulation::new(base_config(
            AllocationMode::Static,
            PredictorKind::LastValue,
        ))
        .run();
        for r in ResourceType::ALL {
            assert!(
                report.metrics.avg_under(r).abs() < 1e-9,
                "{r}: {}",
                report.metrics.avg_under(r)
            );
        }
        assert_eq!(report.metrics.events(), 0);
    }

    #[test]
    fn ticks_clamped_to_trace_length() {
        let mut cfg = base_config(AllocationMode::Dynamic, PredictorKind::LastValue);
        cfg.ticks = Some(10_000_000);
        let report = Simulation::new(cfg).run();
        assert_eq!(report.ticks, 2 * TICKS_PER_DAY as usize);
        let mut cfg = base_config(AllocationMode::Dynamic, PredictorKind::LastValue);
        cfg.ticks = Some(100);
        let report = Simulation::new(cfg).run();
        assert_eq!(report.ticks, 100);
    }

    #[test]
    fn usage_attribution_sums_to_allocation() {
        let report = Simulation::new(base_config(
            AllocationMode::Dynamic,
            PredictorKind::LastValue,
        ))
        .run();
        // The integrated per-operator usage must equal the integrated
        // allocation series.
        let total_usage: f64 = report.center_usage.iter().map(|u| u.cpu_total).sum();
        let total_alloc: f64 = report.alloc_cpu_series.sum();
        assert!(
            (total_usage - total_alloc).abs() < 1e-6 * total_alloc.max(1.0),
            "usage {total_usage} vs alloc {total_alloc}"
        );
    }

    #[test]
    fn distance_class_shares_sum_to_100() {
        let cfg = base_config(AllocationMode::Dynamic, PredictorKind::LastValue);
        let centers_copy = table3_hp12();
        let report = Simulation::new(cfg).run();
        let shares = report.allocation_by_distance_class(&centers_copy);
        assert_eq!(shares.len(), 5);
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 100.0).abs() < 1e-6, "shares sum to {total}");
    }

    #[test]
    fn same_location_tolerance_limits_placement() {
        let mut cfg = base_config(AllocationMode::Dynamic, PredictorKind::LastValue);
        cfg.games[0].tolerance = DistanceClass::SameLocation;
        let centers_copy = table3_hp12();
        let report = Simulation::new(cfg).run();
        let shares = report.allocation_by_distance_class(&centers_copy);
        // Everything allocated must be in the SameLocation bucket.
        assert!(shares[0].1 > 99.9 || report.alloc_cpu_series.sum() == 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one server group")]
    fn empty_simulation_rejected() {
        let mut cfg = base_config(AllocationMode::Dynamic, PredictorKind::LastValue);
        cfg.games.clear();
        let _ = Simulation::new(cfg);
    }

    #[test]
    fn per_game_metrics_cover_each_game() {
        let mut cfg = base_config(AllocationMode::Dynamic, PredictorKind::LastValue);
        let second = GameSpec {
            name: "second".into(),
            operator_base: 100,
            update_model: UpdateModel::Linear,
            ..cfg.games[0].clone()
        };
        cfg.games.push(second);
        let report = Simulation::new(cfg).run();
        assert_eq!(report.per_game.len(), 2);
        assert_eq!(report.per_game[0].name, "game");
        assert_eq!(report.per_game[1].name, "second");
        for gm in &report.per_game {
            assert_eq!(
                gm.metrics.samples(),
                report.metrics.samples(),
                "{}",
                gm.name
            );
        }
        // The aggregate over-allocation sits between the per-game ones
        // (it is a demand-weighted combination).
        use mmog_datacenter::resource::ResourceType;
        let (a, b) = (
            report.per_game[0].metrics.avg_over(ResourceType::Cpu),
            report.per_game[1].metrics.avg_over(ResourceType::Cpu),
        );
        let total = report.metrics.avg_over(ResourceType::Cpu);
        assert!(
            total >= a.min(b) - 1.0 && total <= a.max(b) + 1.0,
            "{a} {total} {b}"
        );
    }

    #[test]
    fn streaming_workload_matches_materialized_report() {
        // The tentpole contract: a game whose workload is the streaming
        // generator must produce the same report, to the last bit, as
        // the same configuration materialized up front — including with
        // predictor training on (the stream serves the train prefix).
        let mut rs = RuneScapeConfig::paper_default(1, 5);
        rs.regions.truncate(2);
        rs.regions[0].groups = 6;
        rs.regions[1].groups = 4;
        let mut materialized = base_config(AllocationMode::Dynamic, PredictorKind::Neural);
        materialized.games[0].workload = generate(&rs).into();
        materialized.train_ticks = 96;
        let mut streaming = base_config(AllocationMode::Dynamic, PredictorKind::Neural);
        streaming.games[0].workload = rs.into();
        streaming.train_ticks = 96;
        let a = Simulation::new(materialized).run();
        let b = Simulation::new(streaming).run();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    /// Index of the most-used center in a baseline run — the victim
    /// whose outage is guaranteed to revoke leases.
    fn busiest_center(mode: AllocationMode) -> usize {
        let report = Simulation::new(base_config(mode, PredictorKind::LastValue)).run();
        report
            .center_usage
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.cpu_total.total_cmp(&b.cpu_total))
            .map(|(i, _)| i)
            .expect("at least one center")
    }

    #[test]
    fn outage_recovers_under_dynamic_provisioning() {
        use mmog_faults::{FaultEvent, FaultKind};
        // The busiest center dies at tick 100 and comes back at tick
        // 160. Dynamic provisioning must re-acquire the lost capacity
        // from the surviving centers and drive unserved player-ticks
        // back to zero.
        let victim = busiest_center(AllocationMode::Dynamic);
        let mut cfg = base_config(AllocationMode::Dynamic, PredictorKind::LastValue);
        cfg.faults = Some(FaultSchedule::from_events(
            "test-outage",
            vec![
                FaultEvent {
                    tick: 100,
                    center: victim,
                    kind: FaultKind::CenterDown,
                },
                FaultEvent {
                    tick: 160,
                    center: victim,
                    kind: FaultKind::CenterUp,
                },
            ],
        ));
        let report = Simulation::new(cfg).run();
        assert_eq!(report.fault_events, 2);
        assert!(report.leases_revoked > 0, "the busiest center held leases");
        assert!(report.reprovisions > 0, "lost capacity was re-acquired");
        assert_eq!(
            report.unrecovered_outages, 0,
            "dynamic provisioning must heal the outage"
        );
        assert_eq!(report.recovery_ticks.len(), 1);
        assert!(
            report.recovery_ticks[0] < 30,
            "recovery took {} ticks",
            report.recovery_ticks[0]
        );
    }

    #[test]
    fn empty_fault_schedule_matches_baseline_report() {
        // Faults = Some(empty) exercises the fault plumbing (retry
        // policy installed, accounting live) without any event — the
        // scored metrics must equal the unfaulted run's exactly.
        let baseline = Simulation::new(base_config(
            AllocationMode::Dynamic,
            PredictorKind::LastValue,
        ))
        .run();
        let mut cfg = base_config(AllocationMode::Dynamic, PredictorKind::LastValue);
        cfg.faults = Some(FaultSchedule::from_events("empty", vec![]));
        let faulted = Simulation::new(cfg).run();
        use mmog_datacenter::resource::ResourceType;
        for r in ResourceType::ALL {
            assert_eq!(baseline.metrics.avg_over(r), faulted.metrics.avg_over(r));
            assert_eq!(baseline.metrics.avg_under(r), faulted.metrics.avg_under(r));
        }
        assert_eq!(baseline.unmet_steps, faulted.unmet_steps);
        assert_eq!(faulted.fault_events, 0);
        assert_eq!(faulted.leases_revoked, 0);
        assert_eq!(faulted.unserved_player_ticks, 0.0);
        assert_eq!(baseline.rejections, faulted.rejections);
    }

    #[test]
    fn static_reprovisions_after_outage_only_under_faults() {
        use mmog_faults::{FaultEvent, FaultKind};
        let victim = busiest_center(AllocationMode::Static);
        let mut cfg = base_config(AllocationMode::Static, PredictorKind::LastValue);
        cfg.faults = Some(FaultSchedule::from_events(
            "static-outage",
            vec![FaultEvent {
                tick: 100,
                center: victim,
                kind: FaultKind::CenterDown,
            }],
        ));
        let report = Simulation::new(cfg).run();
        assert!(report.leases_revoked > 0);
        assert!(
            report.reprovisions > 0,
            "static operators re-buy their fixed allocation"
        );
        assert_eq!(report.unrecovered_outages, 0);
    }

    #[test]
    fn empty_scenario_timeline_matches_baseline_report() {
        // Scenario = Some(empty) exercises the scenario plumbing (retry
        // policy installed, nominal topology threaded through every
        // matcher call) without any event — the scored metrics must
        // equal the scenario-free run's exactly.
        use mmog_faults::ScenarioTimeline;
        let baseline = Simulation::new(base_config(
            AllocationMode::Dynamic,
            PredictorKind::LastValue,
        ))
        .run();
        let mut cfg = base_config(AllocationMode::Dynamic, PredictorKind::LastValue);
        cfg.scenario = Some(ScenarioTimeline::from_events("empty", vec![]));
        let scenario = Simulation::new(cfg).run();
        use mmog_datacenter::resource::ResourceType;
        for r in ResourceType::ALL {
            assert_eq!(baseline.metrics.avg_over(r), scenario.metrics.avg_over(r));
            assert_eq!(baseline.metrics.avg_under(r), scenario.metrics.avg_under(r));
        }
        assert_eq!(baseline.unmet_steps, scenario.unmet_steps);
        assert_eq!(baseline.rejections, scenario.rejections);
        assert_eq!(scenario.scenario_events, 0);
        assert_eq!(scenario.migrations, 0);
        assert_eq!(scenario.migration_player_ticks, 0.0);
        assert_eq!(scenario.unserved_player_ticks, 0.0);
    }

    #[test]
    fn migration_moves_leases_and_charges_cost() {
        use mmog_faults::{ScenarioEvent, ScenarioEventKind, ScenarioTimeline};
        // Group 0 migrates at tick 100 (pick 0 resolves to group 0):
        // its leases are dropped center-side and player-visible cost is
        // charged into both migration and unserved accounting.
        let mut cfg = base_config(AllocationMode::Dynamic, PredictorKind::LastValue);
        cfg.scenario = Some(
            ScenarioTimeline::from_events(
                "one-migration",
                vec![ScenarioEvent {
                    tick: 100,
                    kind: ScenarioEventKind::Migrate { pick: 0 },
                }],
            )
            .with_migration_cost(3),
        );
        let report = Simulation::new(cfg).run();
        assert_eq!(report.scenario_events, 1);
        assert_eq!(report.migrations, 1);
        assert!(
            report.migration_player_ticks > 0.0,
            "a live group pays to move"
        );
        assert!(report.unserved_player_ticks >= report.migration_player_ticks);
        assert_eq!(
            report.unrecovered_outages, 0,
            "dynamic provisioning re-acquires the moved capacity"
        );
        assert!(!report.recovery_ticks.is_empty());
    }

    #[test]
    fn partition_heals_and_run_recovers() {
        use mmog_faults::{ScenarioEvent, ScenarioEventKind, ScenarioTimeline};
        // Split the platform for 60 ticks; the run must complete with
        // both events applied and no lingering topology effects (the
        // heal restores full reachability).
        let mut cfg = base_config(AllocationMode::Dynamic, PredictorKind::LastValue);
        cfg.scenario = Some(ScenarioTimeline::from_events(
            "partition-heal",
            vec![
                ScenarioEvent {
                    tick: 100,
                    kind: ScenarioEventKind::Partition { mask: 0b101 },
                },
                ScenarioEvent {
                    tick: 160,
                    kind: ScenarioEventKind::Heal,
                },
            ],
        ));
        let report = Simulation::new(cfg).run();
        assert_eq!(report.scenario_events, 2);
        assert_eq!(report.migrations, 0);
        assert_eq!(report.migration_player_ticks, 0.0);
    }

    #[test]
    fn flash_crowd_inflates_demand() {
        use mmog_faults::{ScenarioEvent, ScenarioEventKind, ScenarioTimeline};
        let baseline = Simulation::new(base_config(
            AllocationMode::Dynamic,
            PredictorKind::LastValue,
        ))
        .run();
        let mut cfg = base_config(AllocationMode::Dynamic, PredictorKind::LastValue);
        cfg.scenario = Some(ScenarioTimeline::from_events(
            "flash",
            vec![
                ScenarioEvent {
                    tick: 200,
                    kind: ScenarioEventKind::FlashBegin {
                        pick: 0,
                        factor: 2.0,
                    },
                },
                ScenarioEvent {
                    tick: 500,
                    kind: ScenarioEventKind::FlashEnd { pick: 0 },
                },
            ],
        ));
        let report = Simulation::new(cfg).run();
        assert!(
            report.demand_cpu_series.sum() > baseline.demand_cpu_series.sum(),
            "a 2x flash crowd must raise integrated demand"
        );
        assert_eq!(report.scenario_events, 2);
    }

    #[test]
    fn region_failover_drains_every_group_at_the_center() {
        use mmog_faults::{ScenarioEvent, ScenarioEventKind, ScenarioTimeline};
        let victim = busiest_center(AllocationMode::Dynamic);
        let mut cfg = base_config(AllocationMode::Dynamic, PredictorKind::LastValue);
        cfg.scenario = Some(ScenarioTimeline::from_events(
            "failover",
            vec![ScenarioEvent {
                tick: 100,
                kind: ScenarioEventKind::RegionFailover {
                    center: victim as u32,
                },
            }],
        ));
        let report = Simulation::new(cfg).run();
        assert!(
            report.migrations > 0,
            "the busiest center hosted at least one group"
        );
        assert!(report.migration_player_ticks > 0.0);
        assert_eq!(report.unrecovered_outages, 0);
    }

    #[test]
    fn scenario_composes_with_fault_schedule() {
        use mmog_faults::{
            FaultEvent, FaultKind, ScenarioEvent, ScenarioEventKind, ScenarioTimeline,
        };
        let victim = busiest_center(AllocationMode::Dynamic);
        let mut cfg = base_config(AllocationMode::Dynamic, PredictorKind::LastValue);
        cfg.faults = Some(FaultSchedule::from_events(
            "outage",
            vec![
                FaultEvent {
                    tick: 100,
                    center: victim,
                    kind: FaultKind::CenterDown,
                },
                FaultEvent {
                    tick: 160,
                    center: victim,
                    kind: FaultKind::CenterUp,
                },
            ],
        ));
        cfg.scenario = Some(ScenarioTimeline::from_events(
            "partition",
            vec![
                ScenarioEvent {
                    tick: 120,
                    kind: ScenarioEventKind::Partition { mask: 0b11 },
                },
                ScenarioEvent {
                    tick: 200,
                    kind: ScenarioEventKind::Heal,
                },
            ],
        ));
        let report = Simulation::new(cfg).run();
        assert_eq!(report.fault_events, 2);
        assert_eq!(report.scenario_events, 2);
        assert_eq!(report.unrecovered_outages, 0, "both planes heal");
    }

    #[test]
    fn priority_orders_request_processing_under_contention() {
        // Two identical games on a platform that can only hold roughly
        // one of them: the prioritized game must come out with the
        // smaller under-allocation.
        let run = |priorities: [i32; 2]| {
            let mut cfg = base_config(AllocationMode::Dynamic, PredictorKind::LastValue);
            let mut second = GameSpec {
                name: "low".into(),
                operator_base: 100,
                ..cfg.games[0].clone()
            };
            cfg.games[0].name = "high".into();
            cfg.games[0].priority = priorities[0];
            second.priority = priorities[1];
            cfg.games.push(second);
            // Shrink the platform until requests contend: ~10 CPU units
            // against a combined mean demand of ~15.
            let mut budget = 8u32;
            for c in &mut cfg.centers {
                let m = (c.spec.machines / 8).min(budget);
                c.spec.machines = m;
                budget -= m;
            }
            cfg.centers.retain(|c| c.spec.machines > 0);
            Simulation::new(cfg).run()
        };
        use mmog_datacenter::resource::ResourceType;
        let report = run([0, 5]);
        let high = report.per_game[0].metrics.avg_under(ResourceType::Cpu);
        let low = report.per_game[1].metrics.avg_under(ResourceType::Cpu);
        assert!(report.unmet_steps > 0, "platform must actually contend");
        assert!(
            high > low,
            "prioritized game should be under-allocated less: high {high} vs low {low}"
        );
    }
}
