//! The three evaluation metrics of Section V.
//!
//! - **Resource over-allocation** (Eq. 1): Ω(t) = 100 · Σαₘ/Σλₘ. The
//!   paper's tables report the over-allocation *excess*, Ω − 100 (e.g.
//!   Table V's "25.90 %" for the Neural predictor means 25.9 % more CPU
//!   allocated than needed).
//! - **Resource under-allocation** (Eq. 2): Υ(t) = 100 · Σ min(αₘ−λₘ,0)/M,
//!   with M the number of machines in the session. "An over-allocation
//!   at one moment of time does not reduce impact of an under-allocation
//!   at another, and the two metrics are not correlated."
//! - **Significant under-allocation events**: 2-minute samples with
//!   |Υ| > 1 % — "if the game is slowed down for more than 2 minutes,
//!   players become frustrated and may quit the game".
//!
//! The engine evaluates the min of Eq. 2 **per server group** (the
//! natural machine-equivalent of this simulation: one fully loaded game
//! server per group) and passes the summed shortfall in; a surplus on
//! one group never hides a deficit on another, exactly as in the
//! per-machine formula. M is the server-group count (recorded as a
//! deviation in DESIGN.md §8).

use mmog_datacenter::resource::{ResourceType, ResourceVector};
use mmog_util::series::TimeSeries;
use mmog_util::stats::OnlineStats;
use mmog_util::time::SimTime;
use serde::{Deserialize, Serialize};

/// Threshold beyond which an under-allocation sample counts as a
/// significant event (|Υ| > 1 %).
pub const EVENT_THRESHOLD_PCT: f64 = 1.0;

/// Per-resource metric accumulators plus the recorded CPU time series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsCollector {
    /// Ω − 100 per resource type (indexed in `ResourceType::ALL` order).
    over: [OnlineStats; 4],
    /// Υ per resource type.
    under: [OnlineStats; 4],
    /// Number of significant under-allocation events.
    events: u64,
    /// Cumulative event count over time (Figures 7 and 10).
    cumulative_events: TimeSeries,
    /// CPU over-allocation excess over time (Figures 8, 9).
    over_cpu_series: TimeSeries,
    /// CPU under-allocation over time (Figure 9).
    under_cpu_series: TimeSeries,
}

impl Default for MetricsCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsCollector {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self {
            over: [OnlineStats::new(); 4],
            under: [OnlineStats::new(); 4],
            events: 0,
            cumulative_events: TimeSeries::new(),
            over_cpu_series: TimeSeries::new(),
            under_cpu_series: TimeSeries::new(),
        }
    }

    /// Records one 2-minute sample.
    ///
    /// `allocated` and `demand` are the aggregates (for Ω); `shortfall`
    /// is Σₘ min(αₘ − λₘ, 0) evaluated per machine-equivalent by the
    /// caller (each component ≤ 0); `machines` is M of Eq. 2.
    pub fn record(
        &mut self,
        _t: SimTime,
        allocated: &ResourceVector,
        demand: &ResourceVector,
        shortfall: &ResourceVector,
        machines: f64,
    ) {
        let machines = machines.max(1.0);
        let mut event = false;
        for (i, r) in ResourceType::ALL.into_iter().enumerate() {
            let (a, l) = (allocated.get(r), demand.get(r));
            if l > 1e-9 {
                // Ω − 100: percentage allocated beyond the necessary.
                self.over[i].record(100.0 * a / l - 100.0);
            }
            let upsilon = 100.0 * shortfall.get(r).min(0.0) / machines;
            self.under[i].record(upsilon);
            // Events are scored on the compute shortfall: in the paper's
            // Table V the predictors with zero network under-allocation
            // still accumulate events, so the counter tracks CPU Υ.
            if r == ResourceType::Cpu && upsilon.abs() > EVENT_THRESHOLD_PCT {
                event = true;
            }
            if r == ResourceType::Cpu {
                self.over_cpu_series
                    .push(if l > 1e-9 { 100.0 * a / l - 100.0 } else { 0.0 });
                self.under_cpu_series.push(upsilon);
            }
        }
        if event {
            self.events += 1;
        }
        self.cumulative_events.push(self.events as f64);
    }

    /// Average over-allocation excess (Ω − 100) for one resource type.
    #[must_use]
    pub fn avg_over(&self, r: ResourceType) -> f64 {
        self.over[Self::idx(r)].mean()
    }

    /// Average under-allocation Υ for one resource type (≤ 0).
    #[must_use]
    pub fn avg_under(&self, r: ResourceType) -> f64 {
        self.under[Self::idx(r)].mean()
    }

    /// Raw accumulator for a resource's over-allocation excess.
    #[must_use]
    pub fn over_stats(&self, r: ResourceType) -> &OnlineStats {
        &self.over[Self::idx(r)]
    }

    /// Raw accumulator for a resource's under-allocation.
    #[must_use]
    pub fn under_stats(&self, r: ResourceType) -> &OnlineStats {
        &self.under[Self::idx(r)]
    }

    /// Total significant under-allocation events.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Cumulative events over time (the Figure 7 / Figure 10 series).
    #[must_use]
    pub fn cumulative_events(&self) -> &TimeSeries {
        &self.cumulative_events
    }

    /// CPU over-allocation excess over time (Figures 8–9).
    #[must_use]
    pub fn over_cpu_series(&self) -> &TimeSeries {
        &self.over_cpu_series
    }

    /// CPU under-allocation over time (Figure 9).
    #[must_use]
    pub fn under_cpu_series(&self) -> &TimeSeries {
        &self.under_cpu_series
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.cumulative_events.len() as u64
    }

    fn idx(r: ResourceType) -> usize {
        ResourceType::ALL
            .iter()
            .position(|t| *t == r)
            .expect("ALL is complete")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(cpu: f64, out: f64) -> ResourceVector {
        ResourceVector::new(cpu, 0.0, 0.0, out)
    }

    /// Records a sample where the whole session behaves as one machine:
    /// shortfall = min(alloc − demand, 0).
    fn record_single(
        m: &mut MetricsCollector,
        t: u64,
        alloc: ResourceVector,
        demand: ResourceVector,
        machines: f64,
    ) {
        let shortfall = (alloc - demand).min(&ResourceVector::ZERO);
        m.record(SimTime(t), &alloc, &demand, &shortfall, machines);
    }

    #[test]
    fn exact_allocation_scores_zero_over_and_under() {
        let mut m = MetricsCollector::new();
        record_single(&mut m, 0, v(10.0, 5.0), v(10.0, 5.0), 10.0);
        assert!(m.avg_over(ResourceType::Cpu).abs() < 1e-9);
        assert!(m.avg_under(ResourceType::Cpu).abs() < 1e-9);
        assert_eq!(m.events(), 0);
    }

    #[test]
    fn over_allocation_is_excess_percentage() {
        let mut m = MetricsCollector::new();
        // 25% more than demanded.
        record_single(&mut m, 0, v(12.5, 0.0), v(10.0, 0.0), 10.0);
        assert!((m.avg_over(ResourceType::Cpu) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn under_allocation_normalised_by_machines() {
        let mut m = MetricsCollector::new();
        // Shortfall 0.5 over 10 machines → Υ = −5 %.
        record_single(&mut m, 0, v(9.5, 0.0), v(10.0, 0.0), 10.0);
        assert!((m.avg_under(ResourceType::Cpu) + 5.0).abs() < 1e-9);
        assert_eq!(m.events(), 1, "|Υ|=5% > 1% is an event");
    }

    #[test]
    fn small_shortfall_is_not_an_event() {
        let mut m = MetricsCollector::new();
        // Shortfall 0.05 over 10 machines → Υ = −0.5 %: no event.
        record_single(&mut m, 0, v(9.95, 0.0), v(10.0, 0.0), 10.0);
        assert_eq!(m.events(), 0);
    }

    #[test]
    fn per_machine_shortfall_not_hidden_by_aggregate_surplus() {
        // Machine A: alloc 5, demand 2 (surplus 3); machine B: alloc 1,
        // demand 3 (deficit 2). Eq. 2 reports the deficit even though
        // the aggregate allocation (6) exceeds the aggregate demand (5).
        let mut m = MetricsCollector::new();
        let alloc = v(6.0, 0.0);
        let demand = v(5.0, 0.0);
        let shortfall = v(-2.0, 0.0); // Σ min per machine
        m.record(SimTime(0), &alloc, &demand, &shortfall, 2.0);
        assert!((m.avg_under(ResourceType::Cpu) + 100.0).abs() < 1e-9);
        assert_eq!(m.events(), 1);
        // Ω still sees the aggregate surplus.
        assert!(m.avg_over(ResourceType::Cpu) > 0.0);
    }

    #[test]
    fn over_and_under_not_correlated() {
        // Over-allocation on CPU does not cancel under-allocation on
        // the network — and vice versa across time.
        let mut m = MetricsCollector::new();
        record_single(&mut m, 0, v(20.0, 1.0), v(10.0, 2.0), 10.0);
        assert!(m.avg_over(ResourceType::Cpu) > 0.0);
        assert!(m.avg_under(ResourceType::ExtNetOut) < 0.0);
        // A later over-allocation does not reduce the recorded under.
        let before = m.avg_under(ResourceType::ExtNetOut);
        record_single(&mut m, 1, v(20.0, 10.0), v(10.0, 2.0), 10.0);
        assert!(m.avg_under(ResourceType::ExtNetOut) >= before);
        assert!(m.under_stats(ResourceType::ExtNetOut).min().unwrap() <= before);
    }

    #[test]
    fn zero_demand_skips_over_metric() {
        let mut m = MetricsCollector::new();
        record_single(&mut m, 0, v(5.0, 0.0), v(0.0, 0.0), 1.0);
        // No over-allocation sample recorded for CPU (undefined ratio).
        assert_eq!(m.over_stats(ResourceType::Cpu).count(), 0);
        // Under is fine: allocation exceeds demand.
        assert_eq!(m.avg_under(ResourceType::Cpu), 0.0);
    }

    #[test]
    fn cumulative_event_series_monotone() {
        let mut m = MetricsCollector::new();
        for i in 0..10 {
            let alloc = if i % 3 == 0 {
                v(5.0, 0.0)
            } else {
                v(10.0, 0.0)
            };
            record_single(&mut m, i, alloc, v(10.0, 0.0), 10.0);
        }
        let series = m.cumulative_events();
        assert_eq!(series.len(), 10);
        for w in series.values().windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(series.values()[9], m.events() as f64);
        assert_eq!(m.events(), 4); // i = 0, 3, 6, 9
        assert_eq!(m.samples(), 10);
    }

    #[test]
    fn series_lengths_match_samples() {
        let mut m = MetricsCollector::new();
        for i in 0..5 {
            record_single(&mut m, i, v(1.0, 1.0), v(1.0, 1.0), 1.0);
        }
        assert_eq!(m.over_cpu_series().len(), 5);
        assert_eq!(m.under_cpu_series().len(), 5);
    }

    #[test]
    fn machines_clamped_to_one() {
        let mut m = MetricsCollector::new();
        record_single(&mut m, 0, v(0.0, 0.0), v(0.5, 0.0), 0.0);
        // Division by max(machines, 1): Υ = -50%, not -inf.
        assert!((m.avg_under(ResourceType::Cpu) + 50.0).abs() < 1e-9);
    }
}
