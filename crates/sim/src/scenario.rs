//! Ready-made experiment scenarios for Sections V-B through V-F.
//!
//! Table II maps the evaluation space: Sec. V-B varies the predictor
//! (HP-1/HP-2 round-robin platform, O(n²) game); V-C varies the update
//! model; V-D the hosting policy (resource-bulk sweep HP-3…HP-7, time
//! sweep HP-5, HP-8…HP-11); V-E the latency tolerance on the North
//! American subset with policies coarsening towards the East Coast;
//! V-F the multi-MMOG workload mix.

use crate::engine::{AllocationMode, GameSpec, SimulationConfig};
use mmog_datacenter::center::DataCenter;
use mmog_datacenter::locations::{table3_centers, table3_hp12};
use mmog_datacenter::policy::HostingPolicy;
use mmog_predict::eval::PredictorKind;
use mmog_util::geo::{DistanceClass, GeoPoint};
use mmog_util::time::SimDuration;
use mmog_workload::runescape::{RegionSpec, RuneScapeConfig};
use mmog_workload::trace::GameTrace;
use mmog_world::update::UpdateModel;

/// Scale knobs shared by all scenarios (full paper scale by default;
/// smoke tests shrink it).
#[derive(Debug, Clone, Copy)]
pub struct ScenarioOpts {
    /// Trace length in days (the paper uses 14).
    pub days: u64,
    /// Deterministic seed.
    pub seed: u64,
    /// Optional cap on server groups per region (`None` = paper scale).
    pub group_cap: Option<u32>,
}

impl ScenarioOpts {
    /// The paper's two-week setup.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        Self {
            days: 14,
            seed,
            group_cap: None,
        }
    }

    /// A fast setup for tests and smoke runs.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        Self {
            days: 2,
            seed,
            group_cap: Some(4),
        }
    }
}

/// Maps a workload region name to the point its players cluster around.
/// Unknown regions map to the null island origin (0, 0) — scenario
/// builders always use known names.
#[must_use]
pub fn region_origin(name: &str) -> GeoPoint {
    match name {
        "Europe" => GeoPoint::new(52.37, 4.90),         // Amsterdam
        "US East" => GeoPoint::new(38.90, -77.04),      // Washington, D.C.
        "US West" => GeoPoint::new(37.34, -121.89),     // San Jose
        "US Central" => GeoPoint::new(41.88, -87.63),   // Chicago
        "Canada West" => GeoPoint::new(49.28, -123.12), // Vancouver
        "Canada East" => GeoPoint::new(43.65, -79.38),  // Toronto
        "Oceania" => GeoPoint::new(-33.87, 151.21),     // Sydney
        _ => GeoPoint::new(0.0, 0.0),
    }
}

/// Generates the standard RuneScape-like workload at the given scale.
/// Served from the process-wide workload cache: sweeps re-requesting
/// the same scale share one generated trace (the returned value is a
/// cheap clone of the cached copy).
#[must_use]
pub fn standard_trace(opts: &ScenarioOpts) -> GameTrace {
    let mut cfg = RuneScapeConfig::paper_default(opts.days, opts.seed);
    if let Some(cap) = opts.group_cap {
        for r in &mut cfg.regions {
            r.groups = r.groups.min(cap);
        }
    }
    (*mmog_workload::cache::runescape_trace(&cfg)).clone()
}

fn base_game(
    trace: GameTrace,
    predictor: PredictorKind,
    update_model: UpdateModel,
    tolerance: DistanceClass,
) -> GameSpec {
    base_game_with(trace.into(), predictor, update_model, tolerance)
}

fn base_game_with(
    workload: crate::engine::GameWorkload,
    predictor: PredictorKind,
    update_model: UpdateModel,
    tolerance: DistanceClass,
) -> GameSpec {
    GameSpec {
        name: "RuneScape-like".into(),
        operator_base: 0,
        update_model,
        tolerance,
        headroom: 1.0,
        predictor,
        workload,
        static_peak_players: 2100.0, // capacity x the 1.05 overfull clamp
        priority: 0,
    }
}

fn base_sim(
    centers: Vec<DataCenter>,
    games: Vec<GameSpec>,
    mode: AllocationMode,
    opts: &ScenarioOpts,
) -> SimulationConfig {
    SimulationConfig {
        centers,
        games,
        mode,
        ticks: None,
        warmup_ticks: 30,
        train_ticks: 720, // one day of collection for the neural phase
        master_seed: opts.seed,
        faults: None,
        scenario: None,
    }
}

/// Sec. V-B — the prediction-impact experiment: Table III platform with
/// HP-1/HP-2 round-robin, one O(n²) game, no latency constraint.
#[must_use]
pub fn prediction_impact(
    predictor: PredictorKind,
    mode: AllocationMode,
    opts: &ScenarioOpts,
) -> SimulationConfig {
    let trace = standard_trace(opts);
    let game = base_game(
        trace,
        predictor,
        UpdateModel::Quadratic,
        DistanceClass::VeryFar,
    );
    base_sim(table3_hp12(), vec![game], mode, opts)
}

/// [`prediction_impact`] with a caller-supplied workload: the same
/// Sec. V-B platform and game axes, but without materializing (and
/// then discarding) the standard trace. Byte-identical to calling
/// [`prediction_impact`] and overwriting `games[0].workload` — callers
/// driving streaming workloads at scale skip the trace generation that
/// dominated their per-world setup.
#[must_use]
pub fn prediction_impact_with_workload(
    predictor: PredictorKind,
    mode: AllocationMode,
    opts: &ScenarioOpts,
    workload: crate::engine::GameWorkload,
) -> SimulationConfig {
    let game = base_game_with(
        workload,
        predictor,
        UpdateModel::Quadratic,
        DistanceClass::VeryFar,
    );
    base_sim(table3_hp12(), vec![game], mode, opts)
}

/// The uniform fine-grained policy Table II calls "optimal" (finest
/// CPU bulk of Table IV, short leases, no network quantisation).
#[must_use]
pub fn optimal_policy() -> HostingPolicy {
    HostingPolicy::hp(3)
}

/// Sec. V-C — the player-interaction experiment: the Neural predictor
/// on the optimal platform, sweeping the update model.
#[must_use]
pub fn interaction_impact(
    update_model: UpdateModel,
    mode: AllocationMode,
    opts: &ScenarioOpts,
) -> SimulationConfig {
    let trace = standard_trace(opts);
    let game = base_game(
        trace,
        PredictorKind::Neural,
        update_model,
        DistanceClass::VeryFar,
    );
    let centers = table3_centers(|_, _| optimal_policy());
    base_sim(centers, vec![game], mode, opts)
}

/// Sec. V-D — the hosting-policy experiment: every center runs the
/// given policy; Neural predictor, O(n²) game.
#[must_use]
pub fn policy_impact(policy: HostingPolicy, opts: &ScenarioOpts) -> SimulationConfig {
    let trace = standard_trace(opts);
    let game = base_game(
        trace,
        PredictorKind::Neural,
        UpdateModel::Quadratic,
        DistanceClass::VeryFar,
    );
    let centers = table3_centers(|_, _| policy.clone());
    base_sim(centers, vec![game], AllocationMode::Dynamic, opts)
}

/// The North American workload for Sec. V-E: one region per NA data
/// center location, groups sized to keep the system busy at peak.
#[must_use]
pub fn north_american_trace(opts: &ScenarioOpts) -> GameTrace {
    let region = |name: &str, groups: u32, offset: f64| RegionSpec {
        name: name.into(),
        groups: opts.group_cap.map_or(groups, |cap| groups.min(cap)),
        peak_players: 2000.0,
        utc_offset_hours: offset,
    };
    let cfg = RuneScapeConfig {
        regions: vec![
            region("US West", 25, -8.0),
            region("Canada West", 10, -8.0),
            region("US Central", 15, -6.0),
            region("US East", 30, -5.0),
            region("Canada East", 10, -5.0),
        ],
        days: opts.days,
        seed: opts.seed,
        events: Vec::new(),
        always_full_fraction: 0.03,
        weekend_fraction: 1.0 / 3.0,
        outage_prob_per_day: 0.0,
        diurnal_amplitude: 0.55,
        flash_prob_per_tick: 0.004,
        regional_flash_prob_per_tick: 0.01,
    };
    (*mmog_workload::cache::runescape_trace(&cfg)).clone()
}

/// Sec. V-E — the latency-tolerance experiment: NA centers only, with
/// hosting policies "coarse grained … for the data centers located on
/// the East Coast and … gradually finer grained for the … Central and
/// West Coast locations".
#[must_use]
pub fn latency_impact(tolerance: DistanceClass, opts: &ScenarioOpts) -> SimulationConfig {
    let minutes = |m: u64| SimDuration::from_minutes_ceil(m);
    let centers: Vec<DataCenter> = table3_centers(|_, name| {
        if name.starts_with("US East") || name.starts_with("Canada East") {
            HostingPolicy::new(
                "coarse-east",
                Some(1.11),
                Some(2.0),
                None,
                None,
                minutes(720),
            )
        } else if name.starts_with("US Central") {
            HostingPolicy::new(
                "mid-central",
                Some(0.56),
                Some(2.0),
                None,
                None,
                minutes(360),
            )
        } else {
            HostingPolicy::new("fine-west", Some(0.22), Some(2.0), None, None, minutes(180))
        }
    })
    .into_iter()
    .filter(|c| c.spec.continent == "North America")
    .collect();
    let trace = north_american_trace(opts);
    let game = base_game(
        trace,
        PredictorKind::Neural,
        UpdateModel::Quadratic,
        tolerance,
    );
    base_sim(centers, vec![game], AllocationMode::Dynamic, opts)
}

/// The fault-injection experiment: the Sec. V-B platform (Table III,
/// HP-1/HP-2 round-robin) under a deterministic fault schedule derived
/// from `spec` — outages, degradations, lease revocations, predictor
/// dropouts. Last-value prediction keeps the experiment about the
/// *recovery* mechanics rather than the predictor. A zero-rate spec
/// yields `faults: None`, reproducing the unfaulted baseline
/// byte-for-byte.
#[must_use]
pub fn fault_injection(
    spec: &mmog_faults::FaultSpec,
    mode: AllocationMode,
    opts: &ScenarioOpts,
) -> SimulationConfig {
    let mut cfg = prediction_impact(PredictorKind::LastValue, mode, opts);
    cfg.train_ticks = 0;
    let ticks = opts.days * mmog_util::time::TICKS_PER_DAY;
    let schedule = mmog_faults::FaultSchedule::from_spec(spec, ticks, cfg.centers.len());
    cfg.faults = (!schedule.is_empty()).then_some(schedule);
    cfg
}

/// The scenario-engine experiment: the Sec. V-B platform under a
/// deterministic scenario timeline derived from `spec` — network
/// partitions, link degradations, zone migrations, region failovers
/// and flash crowds. Last-value prediction keeps the experiment about
/// the *adaptation* mechanics rather than the predictor. A zero-rate
/// spec yields `scenario: None`, reproducing the scenario-free
/// baseline byte-for-byte.
#[must_use]
pub fn scenario_injection(
    spec: &mmog_faults::ScenarioSpec,
    mode: AllocationMode,
    opts: &ScenarioOpts,
) -> SimulationConfig {
    let mut cfg = prediction_impact(PredictorKind::LastValue, mode, opts);
    cfg.train_ticks = 0;
    let ticks = opts.days * mmog_util::time::TICKS_PER_DAY;
    let timeline = mmog_faults::ScenarioTimeline::from_spec(spec, ticks, cfg.centers.len());
    cfg.scenario = (!timeline.is_empty()).then_some(timeline);
    cfg
}

/// Splits a trace's server groups across games by share (per region,
/// contiguous slices; shares are normalised).
#[must_use]
pub fn split_trace(trace: &GameTrace, shares: &[f64]) -> Vec<GameTrace> {
    let total: f64 = shares.iter().sum();
    let mut out: Vec<GameTrace> = shares
        .iter()
        .map(|_| GameTrace { regions: vec![] })
        .collect();
    if total <= 0.0 {
        return out;
    }
    for region in &trace.regions {
        let n = region.groups.len();
        // Cumulative boundaries so every group lands in exactly one game.
        let mut start = 0usize;
        let mut acc = 0.0;
        for (gi, &share) in shares.iter().enumerate() {
            acc += share / total;
            let end = if gi + 1 == shares.len() {
                n
            } else {
                (acc * n as f64).round() as usize
            }
            .clamp(start, n);
            if end > start {
                out[gi].regions.push(mmog_workload::trace::RegionTrace {
                    region: region.region,
                    name: region.name.clone(),
                    groups: region.groups[start..end].to_vec(),
                });
            }
            start = end;
        }
    }
    out
}

/// Sec. V-F — the multi-MMOG experiment: MMOG A uses O(n·log n), B uses
/// O(n²), C uses O(n²·log n); `shares` gives each game's fraction of
/// the workload (a Table VII row).
#[must_use]
pub fn multi_mmog(shares: [f64; 3], opts: &ScenarioOpts) -> SimulationConfig {
    let trace = standard_trace(opts);
    let parts = split_trace(&trace, &shares);
    let models = [
        UpdateModel::NLogN,
        UpdateModel::Quadratic,
        UpdateModel::QuadraticLog,
    ];
    let names = ["MMOG A", "MMOG B", "MMOG C"];
    let games: Vec<GameSpec> = parts
        .into_iter()
        .zip(models)
        .zip(names)
        .filter(|((t, _), _)| !t.regions.is_empty())
        .enumerate()
        .map(|(i, ((part, model), name))| GameSpec {
            name: name.into(),
            operator_base: (i as u32) * 100,
            update_model: model,
            tolerance: DistanceClass::VeryFar,
            headroom: 1.0,
            predictor: PredictorKind::Neural,
            workload: part.into(),
            static_peak_players: 2100.0, // capacity x the 1.05 overfull clamp
            priority: 0,
        })
        .collect();
    let centers = table3_centers(|_, _| optimal_policy());
    base_sim(centers, games, AllocationMode::Dynamic, opts)
}

/// The paper's future-work extension (Sec. V-F / VII): the multi-MMOG
/// scenario of [`multi_mmog`] on a *constrained* platform (machines
/// scaled down to force contention), with per-game request priorities.
/// `priorities[i]` applies to MMOG A/B/C respectively (lower = first).
#[must_use]
pub fn multi_mmog_prioritized(
    shares: [f64; 3],
    priorities: [i32; 3],
    capacity_scale: f64,
    opts: &ScenarioOpts,
) -> SimulationConfig {
    let mut cfg = multi_mmog(shares, opts);
    for center in &mut cfg.centers {
        let scaled = (f64::from(center.spec.machines) * capacity_scale).round();
        center.spec.machines = (scaled as u32).max(1);
    }
    for game in &mut cfg.games {
        let idx = match game.name.as_str() {
            "MMOG A" => 0,
            "MMOG B" => 1,
            _ => 2,
        };
        game.priority = priorities[idx];
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;

    #[test]
    fn region_origins_are_distinct() {
        let names = [
            "Europe",
            "US East",
            "US West",
            "US Central",
            "Canada West",
            "Canada East",
            "Oceania",
        ];
        for a in &names {
            for b in &names {
                if a != b {
                    let d = region_origin(a).distance_km(&region_origin(b));
                    assert!(d > 100.0, "{a} vs {b}: {d}");
                }
            }
        }
        // Unknown name falls back to (0,0) instead of panicking.
        let p = region_origin("region 42");
        assert_eq!((p.lat, p.lon), (0.0, 0.0));
    }

    #[test]
    fn standard_trace_respects_group_cap() {
        let opts = ScenarioOpts::smoke(1);
        let t = standard_trace(&opts);
        for r in &t.regions {
            assert!(r.groups.len() <= 4, "{}: {}", r.name, r.groups.len());
        }
        let full = standard_trace(&ScenarioOpts {
            days: 1,
            seed: 1,
            group_cap: None,
        });
        assert_eq!(full.total_groups(), 130);
    }

    #[test]
    fn split_trace_partitions_groups() {
        let opts = ScenarioOpts {
            days: 1,
            seed: 2,
            group_cap: Some(10),
        };
        let t = standard_trace(&opts);
        let parts = split_trace(&t, &[0.25, 0.25, 0.5]);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(|p| p.total_groups()).sum();
        assert_eq!(total, t.total_groups(), "no group lost or duplicated");
        // Larger share gets at least as many groups.
        assert!(parts[2].total_groups() >= parts[0].total_groups());
    }

    #[test]
    fn split_trace_handles_extreme_shares() {
        let opts = ScenarioOpts {
            days: 1,
            seed: 3,
            group_cap: Some(5),
        };
        let t = standard_trace(&opts);
        let parts = split_trace(&t, &[1.0, 0.0, 0.0]);
        assert_eq!(parts[0].total_groups(), t.total_groups());
        assert_eq!(parts[1].total_groups(), 0);
        let zero = split_trace(&t, &[0.0, 0.0, 0.0]);
        assert!(zero.iter().all(|p| p.total_groups() == 0));
    }

    #[test]
    fn na_trace_has_five_regions() {
        let t = north_american_trace(&ScenarioOpts {
            days: 1,
            seed: 4,
            group_cap: Some(3),
        });
        assert_eq!(t.regions.len(), 5);
        assert!(t.regions.iter().any(|r| r.name == "Canada East"));
    }

    #[test]
    fn latency_scenario_uses_only_na_centers() {
        let cfg = latency_impact(DistanceClass::Far, &ScenarioOpts::smoke(5));
        assert!(cfg
            .centers
            .iter()
            .all(|c| c.spec.continent == "North America"));
        assert_eq!(cfg.centers.len(), 7); // 2 US West + CanW + Cent + 2 US East + CanE
                                          // East coast coarse, west fine.
        let east = cfg
            .centers
            .iter()
            .find(|c| c.spec.name == "US East (1)")
            .unwrap();
        let west = cfg
            .centers
            .iter()
            .find(|c| c.spec.name == "US West (1)")
            .unwrap();
        assert!(east.spec.policy.granularity() > west.spec.policy.granularity());
    }

    #[test]
    fn smoke_scenarios_run_end_to_end() {
        // Tiny versions of each scenario execute without panicking.
        let opts = ScenarioOpts {
            days: 1,
            seed: 7,
            group_cap: Some(2),
        };
        let fast = PredictorKind::LastValue;
        let mut cfgs = vec![
            prediction_impact(fast, AllocationMode::Dynamic, &opts),
            prediction_impact(fast, AllocationMode::Static, &opts),
            policy_impact(HostingPolicy::hp(5), &opts),
            latency_impact(DistanceClass::VeryFar, &opts),
            multi_mmog([0.33, 0.33, 0.33], &opts),
        ];
        // Swap neural for last-value to keep the test quick.
        for cfg in &mut cfgs {
            for g in &mut cfg.games {
                g.predictor = fast;
            }
            cfg.train_ticks = 0;
        }
        for cfg in cfgs {
            let report = Simulation::new(cfg).run();
            assert!(report.ticks > 0);
            assert!(report.metrics.samples() > 0);
        }
    }

    #[test]
    fn multi_mmog_games_have_distinct_models() {
        let cfg = multi_mmog(
            [0.2, 0.3, 0.5],
            &ScenarioOpts {
                days: 1,
                seed: 9,
                group_cap: Some(6),
            },
        );
        assert_eq!(cfg.games.len(), 3);
        assert_eq!(cfg.games[0].update_model, UpdateModel::NLogN);
        assert_eq!(cfg.games[1].update_model, UpdateModel::Quadratic);
        assert_eq!(cfg.games[2].update_model, UpdateModel::QuadraticLog);
        // Degenerate share drops the game entirely.
        let cfg = multi_mmog(
            [0.0, 0.0, 1.0],
            &ScenarioOpts {
                days: 1,
                seed: 9,
                group_cap: Some(3),
            },
        );
        assert_eq!(cfg.games.len(), 1);
        assert_eq!(cfg.games[0].name, "MMOG C");
    }
}
