//! Per-server-group provisioning logic.
//!
//! Each server group of a running game is provisioned independently:
//! its operator predicts the group's next-step player count, converts
//! it into resource demand, and adjusts the group's leases — releasing
//! matured surplus leases and requesting the deficit through the
//! matching mechanism. Static provisioning (Sec. V-B's baseline) sizes
//! the group once, at peak capacity, and never adjusts.

use crate::demand::DemandModel;
use mmog_datacenter::center::{DataCenter, Lease};
use mmog_datacenter::matching::{match_request, MatchOutcome};
use mmog_datacenter::request::{OperatorId, ResourceRequest};
use mmog_datacenter::resource::ResourceVector;
use mmog_predict::traits::Predictor;
use mmog_util::geo::{DistanceClass, GeoPoint};
use mmog_util::time::SimTime;

/// A lease held by a group, with the index of the granting center.
#[derive(Debug, Clone, Copy)]
pub struct HeldLease {
    /// Index into the simulation's center list.
    pub center: usize,
    /// The lease (amounts, start, earliest release).
    pub lease: Lease,
}

/// Outcome of one adjustment step.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdjustOutcome {
    /// Leases released this step.
    pub released: usize,
    /// Leases granted this step.
    pub granted: usize,
    /// Whether part of the request could not be met anywhere.
    pub unmet: bool,
}

/// Provisioning state for one server group.
pub struct GroupProvisioner {
    /// The operator identity used in leases (one per game × region, so
    /// allocations can be attributed for Figures 13–14).
    pub operator: OperatorId,
    /// Where this group's players are.
    pub origin: GeoPoint,
    /// The game's latency tolerance.
    pub tolerance: DistanceClass,
    /// Player-count → demand conversion.
    pub demand_model: DemandModel,
    /// Multiplier on predicted demand (Sec. V-C suggests "a mechanism
    /// that allocates more than the predicted volume" when even rare
    /// under-allocations cannot be tolerated). 1.0 = allocate exactly
    /// the prediction.
    pub headroom: f64,
    /// When set, [`adjust`] keeps each step's matcher outcome so the
    /// engine can emit match accept/reject trace events. Off by default:
    /// the clone is pure overhead when tracing is disabled.
    ///
    /// [`adjust`]: Self::adjust
    pub record_matches: bool,
    predictor: Box<dyn Predictor + Send>,
    leases: Vec<HeldLease>,
    allocated: ResourceVector,
    last_match: Option<MatchOutcome>,
    last_prediction: f64,
}

impl GroupProvisioner {
    /// Creates a provisioner with the given predictor.
    #[must_use]
    pub fn new(
        operator: OperatorId,
        origin: GeoPoint,
        tolerance: DistanceClass,
        demand_model: DemandModel,
        headroom: f64,
        predictor: Box<dyn Predictor + Send>,
    ) -> Self {
        Self {
            operator,
            origin,
            tolerance,
            demand_model,
            headroom,
            record_matches: false,
            predictor,
            leases: Vec::new(),
            allocated: ResourceVector::ZERO,
            last_match: None,
            last_prediction: f64::NAN,
        }
    }

    /// Currently held amounts.
    #[must_use]
    pub fn allocated(&self) -> ResourceVector {
        self.allocated
    }

    /// Number of live leases.
    #[must_use]
    pub fn lease_count(&self) -> usize {
        self.leases.len()
    }

    /// Feeds the observed player count and returns the demand target
    /// for the next step (predicted players → demand × headroom).
    pub fn observe_and_target(&mut self, players_now: f64) -> ResourceVector {
        self.predictor.observe(players_now);
        let predicted = self.predictor.predict().max(0.0);
        self.last_prediction = predicted;
        self.demand_model.demand(predicted) * self.headroom
    }

    /// The player count predicted by the most recent
    /// [`observe_and_target`] call (NaN before the first one) — the
    /// engine scores it against the next tick's observation.
    ///
    /// [`observe_and_target`]: Self::observe_and_target
    #[must_use]
    pub fn last_prediction(&self) -> f64 {
        self.last_prediction
    }

    /// The matcher outcome of the most recent [`adjust`] step that
    /// issued a request — only retained while [`record_matches`] is set.
    ///
    /// [`adjust`]: Self::adjust
    /// [`record_matches`]: Self::record_matches
    #[must_use]
    pub fn last_match(&self) -> Option<&MatchOutcome> {
        self.last_match.as_ref()
    }

    /// The demand target for a fixed player count (static provisioning).
    #[must_use]
    pub fn static_target(&self, peak_players: f64) -> ResourceVector {
        self.demand_model.demand(peak_players) * self.headroom
    }

    /// Adjusts held leases towards `target`: releases matured leases
    /// wholly contained in the surplus, then requests any deficit.
    pub fn adjust(
        &mut self,
        target: &ResourceVector,
        centers: &mut [DataCenter],
        now: SimTime,
    ) -> AdjustOutcome {
        let mut outcome = AdjustOutcome::default();

        // Phase 1: release surplus. A lease is only released when the
        // time bulk has matured AND dropping it cannot cause a deficit
        // on any resource type.
        let mut surplus = (self.allocated - *target).clamp_non_negative();
        if !surplus.is_negligible(1e-9) {
            // Oldest first: long-held leases matured first.
            self.leases.sort_by_key(|h| h.lease.start);
            let mut i = 0;
            while i < self.leases.len() {
                let held = self.leases[i];
                let releasable = now >= held.lease.earliest_release
                    && held.lease.amounts.fits_within(&surplus, 1e-9);
                if releasable && centers[held.center].release(held.lease.id, now) {
                    surplus = (surplus - held.lease.amounts).clamp_non_negative();
                    self.allocated = (self.allocated - held.lease.amounts).clamp_non_negative();
                    self.leases.swap_remove(i);
                    outcome.released += 1;
                } else {
                    i += 1;
                }
            }
        }

        // Phase 1b: reshape. When the remaining surplus is locked inside
        // one oversized lease (granted at a higher demand level), release
        // it and let phase 2 re-request the smaller amount — but only if
        // the re-granted bulk-rounded amounts would actually be smaller,
        // so a stable target never churns. The re-grant is estimated at
        // the finest bulk available anywhere on the platform: a coarse
        // 12-hour lease taken during a spill-over must not survive just
        // because its own center would re-round to the same size. One
        // reshape per step bounds the lease turnover.
        if !surplus.is_negligible(1e-6) {
            // Finest per-resource bulk across the platform (None = some
            // center grants this resource exactly).
            let finest: [Option<f64>; 4] = {
                let mut out = [None; 4];
                for (slot, r) in out
                    .iter_mut()
                    .zip(mmog_datacenter::resource::ResourceType::ALL)
                {
                    let mut any_exact = false;
                    let mut min_bulk = f64::INFINITY;
                    for c in centers.iter() {
                        match c.spec.policy.bulk(r) {
                            None => any_exact = true,
                            Some(b) => min_bulk = min_bulk.min(b),
                        }
                    }
                    *slot = (!any_exact && min_bulk.is_finite()).then_some(min_bulk);
                }
                out
            };
            let finest_round = |v: &ResourceVector| {
                v.map(|r, amount| {
                    if amount <= 0.0 {
                        return 0.0;
                    }
                    let idx = mmog_datacenter::resource::ResourceType::ALL
                        .iter()
                        .position(|t| *t == r)
                        .expect("ALL is complete");
                    match finest[idx] {
                        None => amount,
                        Some(b) => (amount / b).ceil() * b,
                    }
                })
            };
            let mut best: Option<(usize, f64)> = None;
            for (i, held) in self.leases.iter().enumerate() {
                if now < held.lease.earliest_release {
                    continue;
                }
                let after_release = (self.allocated - held.lease.amounts).clamp_non_negative();
                let deficit = (*target - after_release).clamp_non_negative();
                let regrant = finest_round(&deficit);
                let gain = held.lease.amounts.total() - regrant.total();
                if gain > 1e-6 && best.is_none_or(|(_, g)| gain > g) {
                    best = Some((i, gain));
                }
            }
            if let Some((i, _)) = best {
                let held = self.leases[i];
                if centers[held.center].release(held.lease.id, now) {
                    self.allocated = (self.allocated - held.lease.amounts).clamp_non_negative();
                    self.leases.swap_remove(i);
                    outcome.released += 1;
                }
            }
        }

        // Phase 2: request the deficit.
        self.last_match = None;
        let deficit = (*target - self.allocated).clamp_non_negative();
        if !deficit.is_negligible(1e-6) {
            let request = ResourceRequest::new(self.operator, deficit, self.origin, self.tolerance);
            let matched = match_request(centers, &request, now);
            for grant in &matched.grants {
                let lease = centers[grant.center_index]
                    .leases()
                    .iter()
                    .find(|l| l.id == grant.lease)
                    .copied()
                    .expect("grant refers to a live lease");
                self.allocated += grant.amounts;
                self.leases.push(HeldLease {
                    center: grant.center_index,
                    lease,
                });
                outcome.granted += 1;
            }
            outcome.unmet = !matched.fully_met();
            if self.record_matches {
                self.last_match = Some(matched);
            }
        }
        outcome
    }
}

impl std::fmt::Debug for GroupProvisioner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupProvisioner")
            .field("operator", &self.operator)
            .field("allocated", &self.allocated)
            .field("leases", &self.leases.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmog_datacenter::center::{DataCenterId, DataCenterSpec};
    use mmog_datacenter::policy::HostingPolicy;
    use mmog_predict::simple::LastValue;
    use mmog_util::time::SimDuration;
    use mmog_world::update::UpdateModel;

    fn one_center(policy: HostingPolicy) -> Vec<DataCenter> {
        vec![DataCenter::new(DataCenterSpec {
            id: DataCenterId(0),
            name: "dc".into(),
            country: "X".into(),
            continent: "Y".into(),
            location: GeoPoint::new(50.0, 10.0),
            machines: 20,
            machine_capacity: DataCenterSpec::default_machine_capacity(),
            policy,
        })]
    }

    fn provisioner() -> GroupProvisioner {
        GroupProvisioner::new(
            OperatorId(1),
            GeoPoint::new(50.0, 10.0),
            DistanceClass::VeryFar,
            DemandModel::paper(UpdateModel::Quadratic),
            1.0,
            Box::new(LastValue::new()),
        )
    }

    #[test]
    fn requests_cover_target() {
        let mut centers = one_center(HostingPolicy::hp(5));
        let mut p = provisioner();
        let target = p.demand_model.demand(1500.0);
        let out = p.adjust(&target, &mut centers, SimTime::ZERO);
        assert!(out.granted > 0);
        assert!(!out.unmet);
        assert!(
            target.fits_within(&p.allocated(), 1e-9),
            "allocated covers target"
        );
    }

    #[test]
    fn surplus_released_after_time_bulk() {
        let mut centers = one_center(HostingPolicy::hp(5)); // 180-min bulk
        let mut p = provisioner();
        let high = p.demand_model.demand(2000.0);
        p.adjust(&high, &mut centers, SimTime::ZERO);
        let held_at_peak = p.allocated();
        // Demand collapses; before the bulk matures nothing can go.
        let low = p.demand_model.demand(200.0);
        let early = SimTime::from_minutes(60);
        let out = p.adjust(&low, &mut centers, early);
        assert_eq!(out.released, 0);
        assert_eq!(p.allocated(), held_at_peak);
        // After maturity the surplus leases drop.
        let late = SimTime::from_minutes(200);
        let out = p.adjust(&low, &mut centers, late);
        assert!(out.released > 0);
        assert!(p.allocated().cpu < held_at_peak.cpu);
        // Still covering the low target.
        assert!(low.fits_within(&p.allocated(), 1e-9));
    }

    #[test]
    fn unmet_reported_when_platform_full() {
        let mut centers = one_center(HostingPolicy::hp(5));
        centers[0].spec.machines = 1; // 1.2 CPU units total
        let mut p = provisioner();
        let target = p.demand_model.demand(4000.0); // 4 CPU units
        let out = p.adjust(&target, &mut centers, SimTime::ZERO);
        assert!(out.unmet);
        assert!(p.allocated().cpu < target.cpu);
    }

    #[test]
    fn observe_and_target_uses_prediction() {
        let mut p = provisioner();
        // LastValue predictor: target equals demand(last observation).
        let t1 = p.observe_and_target(1000.0);
        let expected = p.demand_model.demand(1000.0);
        assert!((t1.cpu - expected.cpu).abs() < 1e-12);
        assert!((t1.ext_net_out - expected.ext_net_out).abs() < 1e-12);
    }

    #[test]
    fn headroom_scales_target() {
        let mut p = provisioner();
        p.headroom = 1.25;
        let t = p.observe_and_target(1000.0);
        let base = p.demand_model.demand(1000.0);
        assert!((t.cpu - base.cpu * 1.25).abs() < 1e-12);
    }

    #[test]
    fn static_target_at_peak() {
        let p = provisioner();
        let t = p.static_target(2000.0);
        assert!((t.cpu - 1.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_adjust_converges_to_stable_leases() {
        let mut centers = one_center(HostingPolicy::hp(5));
        let mut p = provisioner();
        let target = p.demand_model.demand(1000.0);
        let mut now = SimTime::ZERO;
        p.adjust(&target, &mut centers, now);
        let after_first = p.lease_count();
        for _ in 0..10 {
            now += SimDuration::TICK;
            let out = p.adjust(&target, &mut centers, now);
            assert_eq!(out.granted, 0, "stable target must not re-request");
            assert_eq!(out.released, 0);
        }
        assert_eq!(p.lease_count(), after_first);
    }

    #[test]
    fn bundle_lease_with_huge_inbound_bulk_sticks() {
        // HP-1's ExtNet[in] bulk of 6 units: the first lease bundles a
        // 6-unit inbound grant which a small demand drop cannot release
        // — the mechanism behind Table V's inflated ExtNet[in]
        // over-allocation.
        let mut centers = one_center(HostingPolicy::hp(1));
        let mut p = provisioner();
        let target = p.demand_model.demand(1500.0);
        p.adjust(&target, &mut centers, SimTime::ZERO);
        assert!((p.allocated().ext_net_in - 6.0).abs() < 1e-9);
        // Demand halves; even after the time bulk, inbound stays at 6
        // because releasing the bundle would drop CPU below target.
        let lower = p.demand_model.demand(1200.0);
        let later = SimTime::from_hours(7);
        p.adjust(&lower, &mut centers, later);
        assert!((p.allocated().ext_net_in - 6.0).abs() < 1e-9);
    }
}
