//! Per-server-group provisioning logic.
//!
//! Each server group of a running game is provisioned independently:
//! its operator predicts the group's next-step player count, converts
//! it into resource demand, and adjusts the group's leases — releasing
//! matured surplus leases and requesting the deficit through the
//! matching mechanism. Static provisioning (Sec. V-B's baseline) sizes
//! the group once, at peak capacity, and never adjusts.

use crate::demand::DemandModel;
use mmog_datacenter::center::{availability_epoch, DataCenter, Lease, LeaseId};
use mmog_datacenter::matching::{
    match_request_indexed_into_via, CandidateIndex, MatchMemo, MatchOutcome, RejectionTotals,
};
use mmog_datacenter::request::{OperatorId, ResourceRequest};
use mmog_datacenter::resource::ResourceVector;
use mmog_datacenter::topology::Topology;
use mmog_predict::traits::Predictor;
use mmog_util::geo::{DistanceClass, GeoPoint};
use mmog_util::time::{SimDuration, SimTime};

/// A lease held by a group, with the index of the granting center.
#[derive(Debug, Clone, Copy)]
pub struct HeldLease {
    /// Index into the simulation's center list.
    pub center: usize,
    /// The lease (amounts, start, earliest release).
    pub lease: Lease,
    /// Whether the lifecycle plane already observed this lease passing
    /// its earliest-release tick (only maintained while
    /// [`GroupProvisioner::record_matches`] is set).
    pub matured: bool,
}

/// Why a lease left its holder — the `cause` field of `lease_release`
/// lifecycle events. Fault-plane revocations keep their own
/// `lease_revoked` event kind and do not appear here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseCause {
    /// Phase 1: the lease matured and fit inside the demand surplus.
    Surplus,
    /// Phase 1b: an oversized lease was released to re-request finer.
    Reshape,
    /// The hosting center went down (fault plane).
    CenterDown,
    /// The owning group migrated away from the center (scenario plane).
    Migration,
    /// A region failover drained the center (scenario plane).
    Failover,
    /// The run ended with the lease still held (closure terminal, so
    /// lifecycle reconstruction always reaches 100%).
    RunEnd,
}

impl ReleaseCause {
    /// Stable label used in `lease_release` events.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ReleaseCause::Surplus => "surplus",
            ReleaseCause::Reshape => "reshape",
            ReleaseCause::CenterDown => "center_down",
            ReleaseCause::Migration => "migration",
            ReleaseCause::Failover => "failover",
            ReleaseCause::RunEnd => "run_end",
        }
    }
}

/// Per-lease causal detail of the most recent adjustment step, retained
/// only while [`GroupProvisioner::record_matches`] is set (the same
/// gate as [`GroupProvisioner::last_match`]): with tracing off the
/// vectors stay empty and the adjust path never touches them.
#[derive(Debug, Clone, Default)]
pub struct LifecycleDetail {
    /// The causal id and requested CPU of the step's matcher request,
    /// when phase 2 issued one.
    pub request: Option<(u64, f64)>,
    /// Leases granted this step, with their granting center index.
    pub grants: Vec<(usize, Lease)>,
    /// Leases released this step (phase 1 surplus or phase 1b reshape).
    pub releases: Vec<(usize, Lease, ReleaseCause)>,
    /// Leases first observed past their earliest-release tick this step.
    pub matured: Vec<(usize, LeaseId)>,
}

impl LifecycleDetail {
    fn clear(&mut self) {
        self.request = None;
        self.grants.clear();
        self.releases.clear();
        self.matured.clear();
    }

    /// Whether the step produced no lifecycle activity at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.request.is_none()
            && self.grants.is_empty()
            && self.releases.is_empty()
            && self.matured.is_empty()
    }
}

/// Outcome of one adjustment step.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdjustOutcome {
    /// Leases released this step.
    pub released: usize,
    /// Leases granted this step.
    pub granted: usize,
    /// Whether part of the request could not be met anywhere.
    pub unmet: bool,
    /// Whether a deficit existed but the request was skipped because the
    /// group is backing off after consecutive failures (see
    /// [`RetryPolicy`]).
    pub deferred: bool,
    /// Per-reason rejection counts from this step's matcher call.
    pub rejections: RejectionTotals,
    /// Whether this step replayed a memoized no-op instead of running
    /// the full release/reshape/request pipeline (see [`MatchMemo`]).
    /// A replayed outcome is otherwise all-zero by construction.
    pub replayed: bool,
}

/// Bounded retry with exponential backoff for re-requesting capacity
/// after a fault (Sec. II-B's self-healing re-provisioning).
///
/// After each consecutive step in which the matcher leaves part of the
/// request unmet, the group sits out `base_ticks << (failures - 1)`
/// ticks (exponent capped at [`max_exponent`], skip capped at
/// [`max_backoff_ticks`]) before asking again, so a platform-wide
/// outage is not hammered with doomed requests every tick.
///
/// [`max_exponent`]: Self::max_exponent
/// [`max_backoff_ticks`]: Self::max_backoff_ticks
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Backoff after the first consecutive failure, in ticks.
    pub base_ticks: u64,
    /// Cap on the doubling exponent.
    pub max_exponent: u32,
    /// Hard cap on the backoff, in ticks.
    pub max_backoff_ticks: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            base_ticks: 1,
            max_exponent: 5,
            max_backoff_ticks: 32,
        }
    }
}

impl RetryPolicy {
    /// Ticks to sit out after `failures` consecutive unmet requests.
    #[must_use]
    pub fn backoff_ticks(&self, failures: u32) -> u64 {
        if failures == 0 {
            return 0;
        }
        let exp = (failures - 1).min(self.max_exponent);
        (self.base_ticks << exp).min(self.max_backoff_ticks)
    }
}

/// Provisioning state for one server group.
pub struct GroupProvisioner {
    /// The operator identity used in leases (one per game × region, so
    /// allocations can be attributed for Figures 13–14).
    pub operator: OperatorId,
    /// Where this group's players are.
    pub origin: GeoPoint,
    /// The game's latency tolerance.
    pub tolerance: DistanceClass,
    /// Player-count → demand conversion.
    pub demand_model: DemandModel,
    /// Multiplier on predicted demand (Sec. V-C suggests "a mechanism
    /// that allocates more than the predicted volume" when even rare
    /// under-allocations cannot be tolerated). 1.0 = allocate exactly
    /// the prediction.
    pub headroom: f64,
    /// When set, [`adjust`] keeps each step's matcher outcome so the
    /// engine can emit match accept/reject trace events. Off by default:
    /// the clone is pure overhead when tracing is disabled.
    ///
    /// [`adjust`]: Self::adjust
    pub record_matches: bool,
    /// When set, [`adjust`] applies bounded retry with exponential
    /// backoff to unmet requests. Only installed by fault-injection
    /// runs: an unfaulted simulation keeps the request-every-tick
    /// behaviour of the baseline model.
    ///
    /// [`adjust`]: Self::adjust
    pub retry: Option<RetryPolicy>,
    predictor: Box<dyn Predictor + Send>,
    leases: Vec<HeldLease>,
    allocated: ResourceVector,
    last_match: Option<MatchOutcome>,
    last_prediction: f64,
    consecutive_unmet: u32,
    backoff_until: SimTime,
    lost: ResourceVector,
    /// Cached matcher view for this group's fixed (origin, tolerance):
    /// candidate ranking survives across ticks instead of being redone
    /// per request.
    index: CandidateIndex,
    /// Cached finest per-resource bulk across the platform (phase 1b),
    /// keyed on the center count. Policies are static for a run, so
    /// this is computed at most once per platform.
    finest_bulks: Option<(usize, [Option<f64>; 4])>,
    /// When set (the default), [`adjust_via`] replays memoized no-op
    /// steps instead of re-running the full pipeline. Tests flip this
    /// off to compare the memoized path against the full walk.
    ///
    /// [`adjust_via`]: Self::adjust_via
    pub memo_enabled: bool,
    /// Memoized proof that the previous step was a no-op, and the keys
    /// it depends on.
    memo: MatchMemo,
    /// Lease-ledger generation: bumped on every grant, release, or
    /// revocation-driven drop, so the memo can tell "nothing changed"
    /// from "changed and changed back".
    lease_gen: u64,
    /// Reusable matcher outcome: phase 2 writes into these buffers
    /// every step instead of allocating fresh vectors per request.
    match_scratch: MatchOutcome,
    /// Stable causal group id baked into request ids (the engine sets
    /// it to the group's index at construction).
    causal_group: u64,
    /// Per-group request sequence number; bumped on every matcher
    /// request regardless of tracing so causal ids are identical
    /// whether or not a trace is being written.
    request_seq: u64,
    /// Per-lease causal detail of the most recent step (gated by
    /// [`record_matches`]).
    ///
    /// [`record_matches`]: Self::record_matches
    detail: LifecycleDetail,
    /// Earliest `earliest_release` across held leases not yet flagged
    /// `matured` — the watermark that lets [`adjust_via`] skip the
    /// per-step maturity scan until something can actually mature.
    /// May be stale after a release/revocation (the removed lease's
    /// time survives here), which only costs one harmless empty scan.
    /// Only maintained while [`record_matches`] is set.
    ///
    /// [`adjust_via`]: Self::adjust_via
    /// [`record_matches`]: Self::record_matches
    next_maturity: Option<SimTime>,
}

impl GroupProvisioner {
    /// Creates a provisioner with the given predictor.
    #[must_use]
    pub fn new(
        operator: OperatorId,
        origin: GeoPoint,
        tolerance: DistanceClass,
        demand_model: DemandModel,
        headroom: f64,
        predictor: Box<dyn Predictor + Send>,
    ) -> Self {
        Self {
            operator,
            origin,
            tolerance,
            demand_model,
            headroom,
            record_matches: false,
            retry: None,
            predictor,
            leases: Vec::new(),
            allocated: ResourceVector::ZERO,
            last_match: None,
            last_prediction: f64::NAN,
            consecutive_unmet: 0,
            backoff_until: SimTime::ZERO,
            lost: ResourceVector::ZERO,
            index: CandidateIndex::new(origin, tolerance),
            finest_bulks: None,
            memo_enabled: true,
            memo: MatchMemo::new(),
            lease_gen: 0,
            match_scratch: MatchOutcome::default(),
            causal_group: 0,
            request_seq: 0,
            detail: LifecycleDetail::default(),
            next_maturity: None,
        }
    }

    /// Installs the stable causal group id baked into this group's
    /// request ids (`group << 32 | seq`). The engine sets it to the
    /// group's index right after construction.
    pub fn set_causal_group(&mut self, group: u64) {
        self.causal_group = group;
    }

    /// The per-lease causal detail of the most recent [`adjust`] step
    /// (empty unless [`record_matches`] is set).
    ///
    /// [`adjust`]: Self::adjust
    /// [`record_matches`]: Self::record_matches
    #[must_use]
    pub fn lifecycle_detail(&self) -> &LifecycleDetail {
        &self.detail
    }

    /// Every lease the group currently holds (run-end closure reads
    /// this to emit `run_end`-cause release events).
    #[must_use]
    pub fn held_leases(&self) -> &[HeldLease] {
        &self.leases
    }

    /// Currently held amounts.
    #[must_use]
    pub fn allocated(&self) -> ResourceVector {
        self.allocated
    }

    /// Number of live leases.
    #[must_use]
    pub fn lease_count(&self) -> usize {
        self.leases.len()
    }

    /// Feeds the observed player count and returns the demand target
    /// for the next step (predicted players → demand × headroom).
    ///
    /// Predictor outputs are sanitised before they reach the demand
    /// model: a non-finite prediction (NaN/±∞ from a diverged MLP)
    /// falls back to the current observation, and negative predictions
    /// clamp to zero — a group can never be sized from garbage.
    pub fn observe_and_target(&mut self, players_now: f64) -> ResourceVector {
        let raw = self.predictor.observe_predict(players_now);
        let predicted = if raw.is_finite() {
            raw.max(0.0)
        } else {
            players_now.max(0.0)
        };
        self.last_prediction = predicted;
        self.demand_model.demand(predicted) * self.headroom
    }

    /// Like [`observe_and_target`], but ignores the predictor's output
    /// and targets the current observation (last-value fallback). Used
    /// when a fault schedule drops the predictor for a tick: the
    /// observation still feeds the predictor so its history stays warm.
    ///
    /// [`observe_and_target`]: Self::observe_and_target
    pub fn observe_and_target_fallback(&mut self, players_now: f64) -> ResourceVector {
        self.predictor.observe(players_now);
        let predicted = players_now.max(0.0);
        self.last_prediction = predicted;
        self.demand_model.demand(predicted) * self.headroom
    }

    /// The player count predicted by the most recent
    /// [`observe_and_target`] call (NaN before the first one) — the
    /// engine scores it against the next tick's observation.
    ///
    /// [`observe_and_target`]: Self::observe_and_target
    #[must_use]
    pub fn last_prediction(&self) -> f64 {
        self.last_prediction
    }

    /// The matcher outcome of the most recent [`adjust`] step that
    /// issued a request — only retained while [`record_matches`] is set.
    ///
    /// [`adjust`]: Self::adjust
    /// [`record_matches`]: Self::record_matches
    #[must_use]
    pub fn last_match(&self) -> Option<&MatchOutcome> {
        self.last_match.as_ref()
    }

    /// The demand target for a fixed player count (static provisioning).
    #[must_use]
    pub fn static_target(&self, peak_players: f64) -> ResourceVector {
        self.demand_model.demand(peak_players) * self.headroom
    }

    /// Forgets every lease held at `center` (the center failed and the
    /// leases were revoked). Returns the dropped leases; the lost
    /// amounts accumulate in [`lost_capacity`] until the next
    /// [`clear_lost_capacity`].
    ///
    /// [`lost_capacity`]: Self::lost_capacity
    /// [`clear_lost_capacity`]: Self::clear_lost_capacity
    pub fn drop_leases_at_center(&mut self, center: usize) -> Vec<Lease> {
        let mut dropped = Vec::new();
        let mut i = 0;
        while i < self.leases.len() {
            if self.leases[i].center == center {
                let held = self.leases.swap_remove(i);
                self.allocated = (self.allocated - held.lease.amounts).clamp_non_negative();
                self.lost += held.lease.amounts;
                self.lease_gen = self.lease_gen.wrapping_add(1);
                dropped.push(held.lease);
            } else {
                i += 1;
            }
        }
        dropped
    }

    /// Forgets one specific lease (spontaneously revoked by its
    /// center). Returns it if this group held it.
    pub fn drop_lease(&mut self, center: usize, id: LeaseId) -> Option<Lease> {
        let i = self
            .leases
            .iter()
            .position(|h| h.center == center && h.lease.id == id)?;
        let held = self.leases.swap_remove(i);
        self.allocated = (self.allocated - held.lease.amounts).clamp_non_negative();
        self.lost += held.lease.amounts;
        self.lease_gen = self.lease_gen.wrapping_add(1);
        Some(held.lease)
    }

    /// Amounts lost to outages/revocations since the last
    /// [`clear_lost_capacity`] — the engine reads this to account
    /// re-provisioning work.
    ///
    /// [`clear_lost_capacity`]: Self::clear_lost_capacity
    #[must_use]
    pub fn lost_capacity(&self) -> ResourceVector {
        self.lost
    }

    /// Resets the lost-capacity accumulator.
    pub fn clear_lost_capacity(&mut self) {
        self.lost = ResourceVector::ZERO;
    }

    /// Adjusts held leases towards `target`: releases matured leases
    /// wholly contained in the surplus, then requests any deficit.
    pub fn adjust(
        &mut self,
        target: &ResourceVector,
        centers: &mut [DataCenter],
        now: SimTime,
    ) -> AdjustOutcome {
        self.adjust_via(None, target, centers, now)
    }

    /// Like [`adjust`], but matches the deficit through `topology` when
    /// one is installed: partitioned centers are unreachable and
    /// degraded links inflate effective distances. `adjust(..)` is
    /// exactly `adjust_via(None, ..)`, so runs without a scenario take
    /// the identical code path they always did.
    ///
    /// [`adjust`]: Self::adjust
    pub fn adjust_via(
        &mut self,
        topology: Option<&Topology>,
        target: &ResourceVector,
        centers: &mut [DataCenter],
        now: SimTime,
    ) -> AdjustOutcome {
        if self.record_matches {
            // Lifecycle plane: observe newly-matured leases before any
            // step can release them (and before the memo fast path,
            // which skips the rest of the walk). Ledger order is
            // deterministic, so the emission order is too. The
            // `next_maturity` watermark keeps this O(1) on the steps
            // where nothing can mature — a lease matures on the same
            // step either way, because the watermark is a lower bound
            // on every unmatured lease's `earliest_release`.
            self.detail.clear();
            if self.next_maturity.is_some_and(|at| now >= at) {
                let mut next: Option<SimTime> = None;
                for held in &mut self.leases {
                    if held.matured {
                        continue;
                    }
                    if now >= held.lease.earliest_release {
                        held.matured = true;
                        self.detail.matured.push((held.center, held.lease.id));
                    } else {
                        let at = held.lease.earliest_release;
                        next = Some(next.map_or(at, |n| n.min(at)));
                    }
                }
                self.next_maturity = next;
            }
        }
        // Fast path: replay a memoized no-op. The memo's keys prove
        // nothing that feeds this step changed since the last full run
        // (ledger generation, fault epoch, topology version, target
        // band, maturation horizon), and the deficit check below is the
        // only step-local input left — so returning the empty outcome
        // is byte-for-byte what the full pipeline would do, including
        // every side effect it would not have (no sort, no release, no
        // matcher call, no event).
        let epoch = availability_epoch();
        let topo_version = topology.map(Topology::version);
        if self.memo_enabled
            && self
                .memo
                .covers(target, epoch, topo_version, self.lease_gen, now)
            && (*target - self.allocated)
                .clamp_non_negative()
                .is_negligible(1e-6)
        {
            return AdjustOutcome {
                replayed: true,
                ..AdjustOutcome::default()
            };
        }
        let mut outcome = AdjustOutcome::default();

        // Phase 1: release surplus. A lease is only released when the
        // time bulk has matured AND dropping it cannot cause a deficit
        // on any resource type.
        let mut surplus = (self.allocated - *target).clamp_non_negative();
        if !surplus.is_negligible(1e-9) {
            // Oldest first: long-held leases matured first.
            self.leases.sort_by_key(|h| h.lease.start);
            let mut i = 0;
            while i < self.leases.len() {
                let held = self.leases[i];
                let releasable = now >= held.lease.earliest_release
                    && held.lease.amounts.fits_within(&surplus, 1e-9);
                if releasable && centers[held.center].release(held.lease.id, now) {
                    surplus = (surplus - held.lease.amounts).clamp_non_negative();
                    self.allocated = (self.allocated - held.lease.amounts).clamp_non_negative();
                    self.leases.swap_remove(i);
                    self.lease_gen = self.lease_gen.wrapping_add(1);
                    outcome.released += 1;
                    if self.record_matches {
                        self.detail
                            .releases
                            .push((held.center, held.lease, ReleaseCause::Surplus));
                    }
                } else {
                    i += 1;
                }
            }
        }

        // Phase 1b: reshape. When the remaining surplus is locked inside
        // one oversized lease (granted at a higher demand level), release
        // it and let phase 2 re-request the smaller amount — but only if
        // the re-granted bulk-rounded amounts would actually be smaller,
        // so a stable target never churns. The re-grant is estimated at
        // the finest bulk available anywhere on the platform: a coarse
        // 12-hour lease taken during a spill-over must not survive just
        // because its own center would re-round to the same size. One
        // reshape per step bounds the lease turnover.
        if !surplus.is_negligible(1e-6) {
            // Finest per-resource bulk across the platform (None = some
            // center grants this resource exactly). Policies are static,
            // so the scan runs once per platform and is cached after.
            let finest: [Option<f64>; 4] = match self.finest_bulks {
                Some((n, cached)) if n == centers.len() => cached,
                _ => {
                    let mut out = [None; 4];
                    for (slot, r) in out
                        .iter_mut()
                        .zip(mmog_datacenter::resource::ResourceType::ALL)
                    {
                        let mut any_exact = false;
                        let mut min_bulk = f64::INFINITY;
                        for c in centers.iter() {
                            match c.spec.policy.bulk(r) {
                                None => any_exact = true,
                                Some(b) => min_bulk = min_bulk.min(b),
                            }
                        }
                        *slot = (!any_exact && min_bulk.is_finite()).then_some(min_bulk);
                    }
                    self.finest_bulks = Some((centers.len(), out));
                    out
                }
            };
            let finest_round = |v: &ResourceVector| {
                v.map(|r, amount| {
                    if amount <= 0.0 {
                        return 0.0;
                    }
                    let idx = mmog_datacenter::resource::ResourceType::ALL
                        .iter()
                        .position(|t| *t == r)
                        .expect("ALL is complete");
                    match finest[idx] {
                        None => amount,
                        Some(b) => (amount / b).ceil() * b,
                    }
                })
            };
            let mut best: Option<(usize, f64)> = None;
            for (i, held) in self.leases.iter().enumerate() {
                if now < held.lease.earliest_release {
                    continue;
                }
                let after_release = (self.allocated - held.lease.amounts).clamp_non_negative();
                let deficit = (*target - after_release).clamp_non_negative();
                let regrant = finest_round(&deficit);
                let gain = held.lease.amounts.total() - regrant.total();
                if gain > 1e-6 && best.is_none_or(|(_, g)| gain > g) {
                    best = Some((i, gain));
                }
            }
            if let Some((i, _)) = best {
                let held = self.leases[i];
                if centers[held.center].release(held.lease.id, now) {
                    self.allocated = (self.allocated - held.lease.amounts).clamp_non_negative();
                    self.leases.swap_remove(i);
                    self.lease_gen = self.lease_gen.wrapping_add(1);
                    outcome.released += 1;
                    if self.record_matches {
                        self.detail
                            .releases
                            .push((held.center, held.lease, ReleaseCause::Reshape));
                    }
                }
            }
        }

        // Phase 2: request the deficit.
        self.last_match = None;
        let deficit = (*target - self.allocated).clamp_non_negative();
        if !deficit.is_negligible(1e-6) {
            if self.retry.is_some() && now < self.backoff_until {
                // Backing off after consecutive failures: skip the
                // doomed request and report the deferral.
                outcome.deferred = true;
                self.memo.invalidate();
                return outcome;
            }
            // Causal request id: group in the high 32 bits, a per-group
            // sequence number in the low 32. Minted unconditionally so
            // the ids are identical whether or not a trace is written.
            self.request_seq = self.request_seq.wrapping_add(1);
            let request_id = (self.causal_group << 32) | (self.request_seq & 0xffff_ffff);
            if self.record_matches {
                self.detail.request = Some((request_id, deficit.cpu));
            }
            let request = ResourceRequest::new(self.operator, deficit, self.origin, self.tolerance);
            let mut matched = std::mem::take(&mut self.match_scratch);
            match_request_indexed_into_via(
                topology,
                &mut self.index,
                centers,
                &request,
                now,
                &mut matched,
            );
            for grant in &matched.grants {
                // The grant's lease was pushed by this very request, so
                // it sits at (or next to) the back of the ledger.
                let lease = centers[grant.center_index]
                    .leases()
                    .iter()
                    .rev()
                    .find(|l| l.id == grant.lease)
                    .copied()
                    .expect("grant refers to a live lease");
                self.allocated += grant.amounts;
                self.leases.push(HeldLease {
                    center: grant.center_index,
                    lease,
                    matured: false,
                });
                self.lease_gen = self.lease_gen.wrapping_add(1);
                outcome.granted += 1;
                if self.record_matches {
                    self.detail.grants.push((grant.center_index, lease));
                    let at = lease.earliest_release;
                    self.next_maturity = Some(self.next_maturity.map_or(at, |n| n.min(at)));
                }
            }
            for rejection in &matched.rejections {
                outcome.rejections.add(rejection.reason);
            }
            outcome.unmet = !matched.fully_met();
            if self.record_matches {
                self.last_match = Some(matched.clone());
            }
            self.match_scratch = matched;
            if let Some(retry) = self.retry {
                if outcome.unmet {
                    self.consecutive_unmet = self.consecutive_unmet.saturating_add(1);
                    // Sitting out N ticks: the next attempt happens at
                    // now + N + 1 (the first tick past the skipped ones).
                    self.backoff_until =
                        now + SimDuration(retry.backoff_ticks(self.consecutive_unmet) + 1);
                } else {
                    self.consecutive_unmet = 0;
                    self.backoff_until = now;
                }
            }
        } else if self.retry.is_some() {
            // No deficit: the group is whole again, reset the backoff.
            self.consecutive_unmet = 0;
            self.backoff_until = now;
        }
        self.rearm_memo(&outcome, target, epoch, topo_version, now);
        outcome
    }

    /// Re-arms (or disarms) the no-op memo after a full adjustment
    /// step. A step is memoizable only when it provably did nothing:
    ///
    /// - the outcome is all-zero (nothing released, granted, unmet,
    ///   deferred, or rejected) and the remaining deficit is below the
    ///   phase-2 threshold, so a replay's empty outcome is exact;
    /// - the proof stays exact for any *larger* target (the monotone
    ///   band): a shrinking surplus can only keep blocking phase 1's
    ///   fit test, and a growing re-grant estimate can only keep
    ///   phase 1b's gain below threshold. Maturation is the one
    ///   time-driven input, so the memo expires at the first future
    ///   `earliest_release`; until then the candidate sets are frozen;
    /// - with *no matured lease at all* there are no candidates,
    ///   whatever the surplus, so the proof covers every
    ///   deficit-negligible target — provided the ledger is already
    ///   start-sorted, because a replayed step must also be allowed to
    ///   skip phase 1's sort without that ever becoming observable.
    fn rearm_memo(
        &mut self,
        outcome: &AdjustOutcome,
        target: &ResourceVector,
        epoch: u64,
        topo_version: Option<u64>,
        now: SimTime,
    ) {
        // A step arms the memo when it left the group whole: fully
        // covered, nothing pending, nothing rejected. The step itself
        // need not have been a no-op — a clean grant or release settles
        // the ledger just as firmly, provided the post-step ledger is
        // inert (checked below), and arming here saves the one full
        // no-op walk per mutation the memo would otherwise need.
        let whole = !outcome.unmet
            && !outcome.deferred
            && outcome.rejections.total() == 0
            && (*target - self.allocated)
                .clamp_non_negative()
                .is_negligible(1e-6);
        if !whole {
            self.memo.invalidate();
            return;
        }
        let mut valid_until: Option<SimTime> = None;
        let mut any_matured = false;
        for held in &self.leases {
            let release_at = held.lease.earliest_release;
            if now < release_at {
                valid_until = Some(valid_until.map_or(release_at, |t| t.min(release_at)));
            } else {
                any_matured = true;
            }
        }
        let sorted = self
            .leases
            .windows(2)
            .all(|w| w[0].lease.start <= w[1].lease.start);
        if outcome.granted > 0 || outcome.released > 0 {
            // A mutating step only proved phases 1/1b inert for the
            // ledger it *walked*, not the one it produced: a grant can
            // overshoot (bulk rounding) and enlarge the surplus, so a
            // held matured lease may have become releasable after the
            // fact, and a replay may only skip phase 1's sort when the
            // ledger already sits in sorted order. Demand both.
            if any_matured || !sorted {
                self.memo.invalidate();
                return;
            }
        }
        let any_target = !any_matured && sorted;
        self.memo.arm(
            *target,
            epoch,
            topo_version,
            self.lease_gen,
            any_target,
            valid_until,
        );
    }

    /// Whether the memo currently holds a replayable no-op proof
    /// (observability and tests; the engine reads per-step skips from
    /// [`AdjustOutcome::replayed`]).
    #[must_use]
    pub fn memo_armed(&self) -> bool {
        self.memo.is_armed()
    }

    /// The current lease-ledger generation (bumped on every grant,
    /// release, or drop).
    #[must_use]
    pub fn lease_generation(&self) -> u64 {
        self.lease_gen
    }
}

impl std::fmt::Debug for GroupProvisioner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupProvisioner")
            .field("operator", &self.operator)
            .field("allocated", &self.allocated)
            .field("leases", &self.leases.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmog_datacenter::center::{DataCenterId, DataCenterSpec};
    use mmog_datacenter::policy::HostingPolicy;
    use mmog_predict::simple::LastValue;
    use mmog_util::time::SimDuration;
    use mmog_world::update::UpdateModel;

    fn one_center(policy: HostingPolicy) -> Vec<DataCenter> {
        vec![DataCenter::new(DataCenterSpec {
            id: DataCenterId(0),
            name: "dc".into(),
            country: "X".into(),
            continent: "Y".into(),
            location: GeoPoint::new(50.0, 10.0),
            machines: 20,
            machine_capacity: DataCenterSpec::default_machine_capacity(),
            policy,
        })]
    }

    fn provisioner() -> GroupProvisioner {
        GroupProvisioner::new(
            OperatorId(1),
            GeoPoint::new(50.0, 10.0),
            DistanceClass::VeryFar,
            DemandModel::paper(UpdateModel::Quadratic),
            1.0,
            Box::new(LastValue::new()),
        )
    }

    #[test]
    fn requests_cover_target() {
        let mut centers = one_center(HostingPolicy::hp(5));
        let mut p = provisioner();
        let target = p.demand_model.demand(1500.0);
        let out = p.adjust(&target, &mut centers, SimTime::ZERO);
        assert!(out.granted > 0);
        assert!(!out.unmet);
        assert!(
            target.fits_within(&p.allocated(), 1e-9),
            "allocated covers target"
        );
    }

    #[test]
    fn surplus_released_after_time_bulk() {
        let mut centers = one_center(HostingPolicy::hp(5)); // 180-min bulk
        let mut p = provisioner();
        let high = p.demand_model.demand(2000.0);
        p.adjust(&high, &mut centers, SimTime::ZERO);
        let held_at_peak = p.allocated();
        // Demand collapses; before the bulk matures nothing can go.
        let low = p.demand_model.demand(200.0);
        let early = SimTime::from_minutes(60);
        let out = p.adjust(&low, &mut centers, early);
        assert_eq!(out.released, 0);
        assert_eq!(p.allocated(), held_at_peak);
        // After maturity the surplus leases drop.
        let late = SimTime::from_minutes(200);
        let out = p.adjust(&low, &mut centers, late);
        assert!(out.released > 0);
        assert!(p.allocated().cpu < held_at_peak.cpu);
        // Still covering the low target.
        assert!(low.fits_within(&p.allocated(), 1e-9));
    }

    #[test]
    fn unmet_reported_when_platform_full() {
        let mut centers = one_center(HostingPolicy::hp(5));
        centers[0].spec.machines = 1; // 1.2 CPU units total
        let mut p = provisioner();
        let target = p.demand_model.demand(4000.0); // 4 CPU units
        let out = p.adjust(&target, &mut centers, SimTime::ZERO);
        assert!(out.unmet);
        assert!(p.allocated().cpu < target.cpu);
    }

    #[test]
    fn observe_and_target_uses_prediction() {
        let mut p = provisioner();
        // LastValue predictor: target equals demand(last observation).
        let t1 = p.observe_and_target(1000.0);
        let expected = p.demand_model.demand(1000.0);
        assert!((t1.cpu - expected.cpu).abs() < 1e-12);
        assert!((t1.ext_net_out - expected.ext_net_out).abs() < 1e-12);
    }

    #[test]
    fn headroom_scales_target() {
        let mut p = provisioner();
        p.headroom = 1.25;
        let t = p.observe_and_target(1000.0);
        let base = p.demand_model.demand(1000.0);
        assert!((t.cpu - base.cpu * 1.25).abs() < 1e-12);
    }

    #[test]
    fn static_target_at_peak() {
        let p = provisioner();
        let t = p.static_target(2000.0);
        assert!((t.cpu - 1.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_adjust_converges_to_stable_leases() {
        let mut centers = one_center(HostingPolicy::hp(5));
        let mut p = provisioner();
        let target = p.demand_model.demand(1000.0);
        let mut now = SimTime::ZERO;
        p.adjust(&target, &mut centers, now);
        let after_first = p.lease_count();
        for _ in 0..10 {
            now += SimDuration::TICK;
            let out = p.adjust(&target, &mut centers, now);
            assert_eq!(out.granted, 0, "stable target must not re-request");
            assert_eq!(out.released, 0);
        }
        assert_eq!(p.lease_count(), after_first);
    }

    /// Predictor stub returning a fixed (possibly garbage) value.
    struct Fixed(f64);
    impl mmog_predict::traits::Predictor for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn observe(&mut self, _: f64) {}
        fn predict(&self) -> f64 {
            self.0
        }
        fn reset(&mut self) {}
    }

    fn provisioner_with(predictor: Box<dyn Predictor + Send>) -> GroupProvisioner {
        GroupProvisioner::new(
            OperatorId(1),
            GeoPoint::new(50.0, 10.0),
            DistanceClass::VeryFar,
            DemandModel::paper(UpdateModel::Quadratic),
            1.0,
            predictor,
        )
    }

    #[test]
    fn garbage_predictions_are_sanitised() {
        // NaN and ±∞ fall back to the current observation.
        for garbage in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut p = provisioner_with(Box::new(Fixed(garbage)));
            let t = p.observe_and_target(800.0);
            let expected = p.demand_model.demand(800.0);
            assert!(
                (t.cpu - expected.cpu).abs() < 1e-12,
                "{garbage} must fall back to the observation"
            );
            assert!((p.last_prediction() - 800.0).abs() < 1e-12);
        }
        // Negative predictions clamp to zero demand.
        let mut p = provisioner_with(Box::new(Fixed(-250.0)));
        let t = p.observe_and_target(800.0);
        assert!(t.is_negligible(1e-12), "negative prediction → zero target");
        assert_eq!(p.last_prediction(), 0.0);
    }

    #[test]
    fn fallback_targets_the_observation() {
        // The predictor would say 9999; the dropout fallback ignores it.
        let mut p = provisioner_with(Box::new(Fixed(9999.0)));
        let t = p.observe_and_target_fallback(400.0);
        let expected = p.demand_model.demand(400.0);
        assert!((t.cpu - expected.cpu).abs() < 1e-12);
        assert!((p.last_prediction() - 400.0).abs() < 1e-12);
    }

    #[test]
    fn dropped_leases_accumulate_lost_capacity() {
        let mut centers = one_center(HostingPolicy::hp(5));
        let mut p = provisioner();
        let target = p.demand_model.demand(1500.0);
        p.adjust(&target, &mut centers, SimTime::ZERO);
        let held = p.allocated();
        assert!(held.cpu > 0.0);
        let dropped = p.drop_leases_at_center(0);
        assert!(!dropped.is_empty());
        assert!(p.allocated().is_negligible(1e-12));
        assert_eq!(p.lease_count(), 0);
        assert!((p.lost_capacity().cpu - held.cpu).abs() < 1e-9);
        p.clear_lost_capacity();
        assert!(p.lost_capacity().is_negligible(1e-12));
        // Dropping again finds nothing.
        assert!(p.drop_leases_at_center(0).is_empty());
    }

    #[test]
    fn backoff_defers_doomed_requests() {
        let mut centers = one_center(HostingPolicy::hp(5));
        centers[0].spec.machines = 0; // nothing can ever be granted
        let mut p = provisioner();
        p.retry = Some(RetryPolicy::default());
        let target = p.demand_model.demand(1000.0);
        let mut now = SimTime::ZERO;
        // First attempt fails and arms a 1-tick backoff.
        let out = p.adjust(&target, &mut centers, now);
        assert!(out.unmet && !out.deferred);
        assert!(out.rejections.total() > 0);
        // Next tick is within the backoff window → deferred, no matcher
        // call (no new rejections).
        now += SimDuration::TICK;
        let out = p.adjust(&target, &mut centers, now);
        assert!(out.deferred && !out.unmet);
        assert_eq!(out.rejections.total(), 0);
        // Consecutive failures stretch the window exponentially: after
        // the second real failure the wait is 2 ticks.
        now += SimDuration::TICK;
        let out = p.adjust(&target, &mut centers, now);
        assert!(out.unmet && !out.deferred);
        now += SimDuration::TICK;
        assert!(p.adjust(&target, &mut centers, now).deferred);
        now += SimDuration::TICK;
        assert!(p.adjust(&target, &mut centers, now).deferred);
        now += SimDuration::TICK;
        assert!(p.adjust(&target, &mut centers, now).unmet);
        // Capacity returns → request succeeds and the backoff resets.
        centers[0].spec.machines = 20;
        now += SimDuration(RetryPolicy::default().max_backoff_ticks);
        let out = p.adjust(&target, &mut centers, now);
        assert!(out.granted > 0 && !out.unmet);
        now += SimDuration::TICK;
        let out = p.adjust(&target, &mut centers, now);
        assert!(!out.deferred, "met request resets the backoff");
    }

    #[test]
    fn backoff_caps_at_policy_maximum() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff_ticks(0), 0);
        assert_eq!(policy.backoff_ticks(1), 1);
        assert_eq!(policy.backoff_ticks(2), 2);
        assert_eq!(policy.backoff_ticks(6), 32);
        assert_eq!(policy.backoff_ticks(60), 32, "capped at max_backoff_ticks");
    }

    #[test]
    fn bundle_lease_with_huge_inbound_bulk_sticks() {
        // HP-1's ExtNet[in] bulk of 6 units: the first lease bundles a
        // 6-unit inbound grant which a small demand drop cannot release
        // — the mechanism behind Table V's inflated ExtNet[in]
        // over-allocation.
        let mut centers = one_center(HostingPolicy::hp(1));
        let mut p = provisioner();
        let target = p.demand_model.demand(1500.0);
        p.adjust(&target, &mut centers, SimTime::ZERO);
        assert!((p.allocated().ext_net_in - 6.0).abs() < 1e-9);
        // Demand halves; even after the time bulk, inbound stays at 6
        // because releasing the bundle would drop CPU below target.
        let lower = p.demand_model.demand(1200.0);
        let later = SimTime::from_hours(7);
        p.adjust(&lower, &mut centers, later);
        assert!((p.allocated().ext_net_in - 6.0).abs() < 1e-9);
    }

    #[test]
    fn memo_replays_stable_noop_ticks() {
        // The availability epoch is process-global; a concurrent fault
        // test can bump it between our two calls. Retry until we get a
        // quiet window, then the replay assertion is exact.
        for _ in 0..100 {
            let mut centers = one_center(HostingPolicy::hp(5));
            let mut p = provisioner();
            let target = p.demand_model.demand(1000.0);
            let epoch = availability_epoch();
            let first = p.adjust(&target, &mut centers, SimTime::ZERO);
            assert!(!first.replayed, "a granting step cannot be a replay");
            // The granting walk itself proves phases 1/1b inert (no
            // matured leases, sorted ledger), so post-mutation arming
            // lets every later stable tick replay without a walk.
            let second = p.adjust(&target, &mut centers, SimTime::ZERO + SimDuration::TICK);
            let third = p.adjust(
                &target,
                &mut centers,
                SimTime::ZERO + SimDuration::TICK + SimDuration::TICK,
            );
            if availability_epoch() != epoch {
                continue; // raced with a fault test; try again
            }
            assert!(p.memo_armed());
            assert!(second.replayed, "first stable tick after the grant replays");
            assert!(third.replayed, "stable tick must replay the memo");
            assert_eq!(
                (third.granted, third.released, third.unmet, third.deferred),
                (0, 0, false, false)
            );
            return;
        }
        panic!("no quiet availability-epoch window in 100 attempts");
    }

    #[test]
    fn memo_disabled_always_runs_the_full_walk() {
        let mut centers = one_center(HostingPolicy::hp(5));
        let mut p = provisioner();
        p.memo_enabled = false;
        let target = p.demand_model.demand(1000.0);
        let mut now = SimTime::ZERO;
        for _ in 0..5 {
            let out = p.adjust(&target, &mut centers, now);
            assert!(!out.replayed);
            now += SimDuration::TICK;
        }
    }

    #[test]
    fn memo_drops_on_real_demand_growth() {
        let mut centers = one_center(HostingPolicy::hp(5));
        let mut p = provisioner();
        let target = p.demand_model.demand(1000.0);
        let mut now = SimTime::ZERO;
        p.adjust(&target, &mut centers, now);
        now += SimDuration::TICK;
        p.adjust(&target, &mut centers, now);
        // A genuinely larger target has a non-negligible deficit: the
        // fast path must step aside and the full walk must grant.
        let gen = p.lease_generation();
        let bigger = p.demand_model.demand(4000.0);
        now += SimDuration::TICK;
        let out = p.adjust(&bigger, &mut centers, now);
        assert!(!out.replayed);
        assert!(out.granted > 0);
        assert_ne!(p.lease_generation(), gen, "grants bump the ledger gen");
    }
}
