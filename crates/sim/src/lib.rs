//! Trace-driven resource-provisioning simulation — Section V of the
//! paper.
//!
//! "In our simulation, the game operators perform a prediction of the
//! game load (i.e., number of players and interactions per zone) every
//! two minutes and, based on the results, request an appropriate amount
//! of resources to the data centres. … We assume zero overhead in
//! resource allocation, provisioning, and setup."
//!
//! - [`demand`] — converts player counts into resource demand through
//!   the update models of Sec. II-A (one "unit" per resource = a fully
//!   loaded 2 000-client RuneScape game server, Sec. V-A).
//! - [`metrics`] — over-allocation Ω(t), under-allocation Υ(t)
//!   (Equations 1–2) and the significant-under-allocation event counter
//!   (|Υ| > 1 % for a 2-minute sample).
//! - [`provision`] — the dynamic (prediction-driven) and static
//!   (peak-sized) provisioning strategies, plus the retry/backoff
//!   machinery that re-provisions capacity lost to injected faults.
//! - [`engine`] — the tick loop binding workload, predictors, matching
//!   and metrics together, with per-center/per-operator allocation
//!   attribution for the Figures 13–14 analyses and the optional
//!   fault-injection plane (outages, degradations, lease revocations;
//!   DESIGN.md §11).
//! - [`scenario`] — ready-made experiment setups for Sections V-B
//!   through V-F.
//! - [`report`] — plain-text table/series rendering in the paper's
//!   format.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod demand;
pub mod engine;
pub mod metrics;
pub mod provision;
pub mod report;
pub mod scenario;

pub use demand::DemandModel;
pub use engine::{AllocationMode, GameSpec, GameWorkload, SimReport, Simulation, SimulationConfig};
pub use metrics::MetricsCollector;
pub use provision::RetryPolicy;
pub use scenario::region_origin;
